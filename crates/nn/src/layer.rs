//! The layer abstraction and K-FAC statistic capture.

use crate::tensor4::Tensor4;
use spdkfac_tensor::Matrix;

/// A trainable parameter: value and the gradient of the current step.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter values.
    pub value: Matrix,
    /// Gradient accumulated by the last backward pass.
    pub grad: Matrix,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.rows() * self.value.cols()
    }
}

/// Raw K-FAC statistics captured by one preconditionable layer during one
/// forward/backward pass.
///
/// `a_rows` are the layer-input rows (inputs for `Linear`, im2col patches for
/// `Conv2d`); `g_rows` are the loss gradients w.r.t. the layer's
/// pre-activation outputs (mean-reduced, i.e. carrying a `1/N` factor).
#[derive(Debug, Clone)]
pub struct KfacCapture {
    /// Input rows: `R_a × d_a`.
    pub a_rows: Matrix,
    /// Output-gradient rows: `R_g × d_g`.
    pub g_rows: Matrix,
    /// Mini-batch size `N` of the captured step.
    pub batch: usize,
}

impl KfacCapture {
    /// Kronecker factor `A = E[a aᵀ]` (Eq. 7): the Gramian of the input rows
    /// averaged over all rows (batch × spatial positions).
    pub fn factor_a(&self) -> Matrix {
        self.a_rows.gramian_scaled(self.a_rows.rows() as f64)
    }

    /// Kronecker factor `G = E[ĝ ĝᵀ]` (Eq. 8), where per-sample
    /// pre-activation gradients `ĝ = N·g` undo the loss mean-reduction:
    /// `G = N² / R_g · (gᵀ g)`.
    pub fn factor_g(&self) -> Matrix {
        let n = self.batch as f64;
        let rows = self.g_rows.rows() as f64;
        self.g_rows.gramian_scaled(rows / (n * n))
    }

    /// `(d_a, d_g)` — the factor dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.a_rows.cols(), self.g_rows.cols())
    }
}

/// A differentiable layer.
///
/// The contract mirrors a define-by-run framework: `forward` caches whatever
/// `backward` needs; `backward` consumes the cached state, fills parameter
/// gradients and returns the gradient w.r.t. the input. Layers are driven by
/// [`crate::Sequential`].
pub trait Layer: Send {
    /// Human-readable layer name (used in traces and error messages).
    fn name(&self) -> &str;

    /// Forward pass. When `capture` is true, preconditionable layers record
    /// the K-FAC `a` statistic (and arm `g` capture for the backward pass).
    fn forward(&mut self, x: &Tensor4, capture: bool) -> Tensor4;

    /// Backward pass: returns the gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding `forward`.
    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4;

    /// Immutable views of the trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Param>;

    /// Mutable views of the trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Takes the K-FAC capture recorded by the last captured
    /// forward/backward pair, if this layer is preconditionable.
    fn take_capture(&mut self) -> Option<KfacCapture>;

    /// Takes the `a` statistic rows as soon as the layer's forward pass has
    /// run (the `register_forward_pre_hook` analogue of §V-A) — this is what
    /// lets SPD-KFAC start communicating `A_{l-1}` while later layers are
    /// still computing. Non-preconditionable layers return `None`.
    fn take_a_stat(&mut self) -> Option<Matrix> {
        None
    }

    /// Takes the `(g rows, batch)` statistic as soon as the layer's backward
    /// pass has run (the `register_backward_hook` analogue of §V-A).
    /// Non-preconditionable layers return `None`.
    fn take_g_stat(&mut self) -> Option<(Matrix, usize)> {
        None
    }

    /// `(d_a, d_g)` Kronecker-factor dimensions for preconditionable layers.
    fn kfac_dims(&self) -> Option<(usize, usize)>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_tensor::rng::MatrixRng;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Matrix::identity(3));
        assert_eq!(p.grad, Matrix::zeros(3, 3));
        assert_eq!(p.numel(), 9);
    }

    #[test]
    fn factor_a_is_row_averaged_gramian() {
        let mut rng = MatrixRng::new(1);
        let a_rows = rng.gaussian_matrix(10, 4);
        let cap = KfacCapture {
            a_rows: a_rows.clone(),
            g_rows: Matrix::zeros(10, 2),
            batch: 10,
        };
        let a = cap.factor_a();
        let expect = a_rows.gramian_scaled(10.0);
        assert!(a.max_abs_diff(&expect) < 1e-12);
        assert_eq!(cap.dims(), (4, 2));
    }

    #[test]
    fn factor_g_rescales_by_batch() {
        // For a linear layer (R_g == N), G should equal N · gᵀg.
        let mut rng = MatrixRng::new(2);
        let g_rows = rng.gaussian_matrix(8, 3);
        let cap = KfacCapture {
            a_rows: Matrix::zeros(8, 2),
            g_rows: g_rows.clone(),
            batch: 8,
        };
        let g = cap.factor_g();
        let mut expect = g_rows.gramian();
        expect.scale(8.0);
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn factor_g_conv_scaling() {
        // For a conv layer with T spatial positions, R_g = N·T and
        // G = N²/(N·T) gᵀg = (N/T) gᵀg.
        let mut rng = MatrixRng::new(3);
        let (n, t, d) = (4, 5, 3);
        let g_rows = rng.gaussian_matrix(n * t, d);
        let cap = KfacCapture {
            a_rows: Matrix::zeros(n * t, 2),
            g_rows: g_rows.clone(),
            batch: n,
        };
        let g = cap.factor_g();
        let mut expect = g_rows.gramian();
        expect.scale(n as f64 / t as f64);
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }
}
