//! Property tests for the NN substrate: gradients of randomly-configured
//! layers agree with central finite differences, and structural invariants
//! hold for arbitrary shapes.

use proptest::prelude::*;
use spdkfac_nn::layers::{Conv2d, LeakyReLU, Linear, ReLU, Tanh};
use spdkfac_nn::loss::softmax_cross_entropy;
use spdkfac_nn::{Layer, Sequential, Tensor4};
use spdkfac_tensor::rng::MatrixRng;

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-5;

fn check_grads(net: &mut Sequential, x: &Tensor4, labels: &[usize]) -> Result<(), TestCaseError> {
    let out = net.forward(x, false);
    let (_, grad) = softmax_cross_entropy(&out, labels);
    let dx = net.backward(&grad);
    let analytic: Vec<Vec<f64>> = net
        .parameters()
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();

    // Parameter gradients (sampled to keep property cases fast).
    for (pi, param_grads) in analytic.iter().enumerate() {
        let numel = param_grads.len();
        for ei in (0..numel).step_by(numel.div_ceil(5).max(1)) {
            let orig = net.parameters()[pi].value.as_slice()[ei];
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig + EPS;
            let (lp, _) = softmax_cross_entropy(&net.forward(x, false), labels);
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig - EPS;
            let (lm, _) = softmax_cross_entropy(&net.forward(x, false), labels);
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig;
            let fd = (lp - lm) / (2.0 * EPS);
            prop_assert!(
                (fd - param_grads[ei]).abs() < TOL,
                "param {pi} elem {ei}: fd {fd} vs analytic {}",
                param_grads[ei]
            );
        }
    }
    // Input gradients (sampled).
    let mut xp = x.clone();
    for i in (0..x.numel()).step_by(x.numel().div_ceil(6).max(1)) {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + EPS;
        let (lp, _) = softmax_cross_entropy(&net.forward(&xp, false), labels);
        xp.as_mut_slice()[i] = orig - EPS;
        let (lm, _) = softmax_cross_entropy(&net.forward(&xp, false), labels);
        xp.as_mut_slice()[i] = orig;
        let fd = (lp - lm) / (2.0 * EPS);
        prop_assert!(
            (fd - dx.as_slice()[i]).abs() < TOL,
            "input {i}: fd {fd} vs analytic {}",
            dx.as_slice()[i]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_linear_stacks_have_correct_gradients(
        d_in in 2usize..6,
        hidden in 2usize..6,
        classes in 2usize..4,
        batch in 1usize..4,
        act_pick in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let act: Box<dyn Layer> = match act_pick {
            0 => Box::new(ReLU::new()),
            1 => Box::new(Tanh::new()),
            _ => Box::new(LeakyReLU::new(0.1)),
        };
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(d_in, hidden, true, seed)),
            act,
            Box::new(Linear::new(hidden, classes, true, seed + 1)),
        ]);
        let mut rng = MatrixRng::new(seed);
        let x = Tensor4::from_vec(batch, d_in, 1, 1, rng.uniform_vec(batch * d_in, -1.0, 1.0));
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        check_grads(&mut net, &x, &labels)?;
    }

    #[test]
    fn random_conv_configs_have_correct_gradients(
        c_in in 1usize..3,
        c_out in 1usize..3,
        kernel in 1usize..4,
        stride in 1usize..3,
        hw in 3usize..6,
        seed in 0u64..10_000,
    ) {
        // Keep the geometry valid: pad so the window fits.
        let pad = kernel / 2;
        let out_hw = (hw + 2 * pad - kernel) / stride + 1;
        prop_assume!(out_hw >= 1);
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(c_in, c_out, kernel, stride, pad, true, seed)) as Box<dyn Layer>,
            Box::new(spdkfac_nn::layers::Flatten::new()),
            Box::new(Linear::new(c_out * out_hw * out_hw, 2, true, seed + 1)),
        ]);
        let mut rng = MatrixRng::new(seed);
        let x = Tensor4::from_vec(2, c_in, hw, hw, rng.uniform_vec(2 * c_in * hw * hw, -1.0, 1.0));
        check_grads(&mut net, &x, &[0, 1])?;
    }

    #[test]
    fn forward_shapes_are_consistent(
        c_in in 1usize..4,
        c_out in 1usize..5,
        kernel in 1usize..4,
        hw in 4usize..9,
        batch in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let pad = kernel / 2;
        let mut conv = Conv2d::new(c_in, c_out, kernel, 1, pad, false, seed);
        let x = Tensor4::zeros(batch, c_in, hw, hw);
        let y = conv.forward(&x, false);
        let expect_hw = hw + 2 * pad - kernel + 1;
        prop_assert_eq!(y.shape(), (batch, c_out, expect_hw, expect_hw));
        let dx = conv.backward(&y);
        prop_assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn kfac_capture_dims_match_layer_dims(
        d_in in 1usize..8,
        d_out in 1usize..8,
        batch in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut l = Linear::new(d_in, d_out, true, seed);
        let x = Tensor4::zeros(batch, d_in, 1, 1);
        let y = l.forward(&x, true);
        let _ = l.backward(&y);
        let cap = l.take_capture().expect("capture");
        prop_assert_eq!(cap.dims(), (d_in, d_out));
        prop_assert_eq!(cap.factor_a().shape(), (d_in, d_in));
        prop_assert_eq!(cap.factor_g().shape(), (d_out, d_out));
        prop_assert_eq!(cap.factor_a().max_asymmetry(), 0.0);
    }
}
