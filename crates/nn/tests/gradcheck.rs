//! Finite-difference gradient checks for every layer type, end-to-end
//! through the loss. These are the ground truth that the K-FAC statistics
//! and distributed trainers build on.

use spdkfac_nn::data::{synthetic_images, teacher_student};
use spdkfac_nn::layers::{AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU};
use spdkfac_nn::loss::{mse_loss, softmax_cross_entropy};
use spdkfac_nn::models::{mlp, small_cnn};
use spdkfac_nn::{Sequential, Tensor4};
use spdkfac_tensor::rng::MatrixRng;

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-5;

/// Checks dL/dparam for every parameter of `net` against central finite
/// differences on a classification problem.
fn check_param_grads_ce(net: &mut Sequential, x: &Tensor4, labels: &[usize]) {
    let out = net.forward(x, false);
    let (_, grad) = softmax_cross_entropy(&out, labels);
    net.backward(&grad);
    let analytic: Vec<Vec<f64>> = net
        .parameters()
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();

    for (pi, param_grads) in analytic.iter().enumerate() {
        for (ei, &an) in param_grads.iter().enumerate() {
            let orig = net.parameters()[pi].value.as_slice()[ei];

            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig + EPS;
            let (lp, _) = softmax_cross_entropy(&net.forward(x, false), labels);
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig - EPS;
            let (lm, _) = softmax_cross_entropy(&net.forward(x, false), labels);
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig;

            let fd = (lp - lm) / (2.0 * EPS);
            assert!(
                (fd - an).abs() < TOL,
                "param {pi} elem {ei}: finite-diff {fd} vs analytic {an}"
            );
        }
    }
}

/// Checks dL/dx against finite differences.
fn check_input_grads_ce(net: &mut Sequential, x: &Tensor4, labels: &[usize]) {
    let out = net.forward(x, false);
    let (_, grad) = softmax_cross_entropy(&out, labels);
    let dx = net.backward(&grad);

    let mut xp = x.clone();
    for i in 0..x.numel() {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + EPS;
        let (lp, _) = softmax_cross_entropy(&net.forward(&xp, false), labels);
        xp.as_mut_slice()[i] = orig - EPS;
        let (lm, _) = softmax_cross_entropy(&net.forward(&xp, false), labels);
        xp.as_mut_slice()[i] = orig;
        let fd = (lp - lm) / (2.0 * EPS);
        assert!(
            (fd - dx.as_slice()[i]).abs() < TOL,
            "input elem {i}: finite-diff {fd} vs analytic {}",
            dx.as_slice()[i]
        );
    }
}

#[test]
fn linear_relu_stack_grads() {
    let mut net = mlp(&[5, 7, 3], 11);
    let mut rng = MatrixRng::new(1);
    let x = Tensor4::from_vec(4, 5, 1, 1, rng.uniform_vec(20, -1.0, 1.0));
    check_param_grads_ce(&mut net, &x, &[0, 1, 2, 0]);
    check_input_grads_ce(&mut net, &x, &[0, 1, 2, 0]);
}

#[test]
fn conv_grads() {
    let mut net = Sequential::new(vec![
        Box::new(Conv2d::new(2, 3, 3, 1, 1, true, 5)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(3 * 16, 2, true, 6)),
    ]);
    let mut rng = MatrixRng::new(2);
    let x = Tensor4::from_vec(2, 2, 4, 4, rng.uniform_vec(64, -1.0, 1.0));
    check_param_grads_ce(&mut net, &x, &[1, 0]);
    check_input_grads_ce(&mut net, &x, &[1, 0]);
}

#[test]
fn strided_conv_grads() {
    let mut net = Sequential::new(vec![
        Box::new(Conv2d::new(1, 2, 3, 2, 1, false, 9)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(2 * 4, 2, false, 10)),
    ]);
    let mut rng = MatrixRng::new(3);
    let x = Tensor4::from_vec(2, 1, 4, 4, rng.uniform_vec(32, -1.0, 1.0));
    check_param_grads_ce(&mut net, &x, &[0, 1]);
    check_input_grads_ce(&mut net, &x, &[0, 1]);
}

#[test]
fn maxpool_grads() {
    let mut net = Sequential::new(vec![
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(4, 2, true, 20)),
    ]);
    let mut rng = MatrixRng::new(4);
    // Distinct values so the argmax is stable under ±EPS perturbations.
    let mut vals = rng.uniform_vec(16, -1.0, 1.0);
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let x = Tensor4::from_vec(1, 1, 4, 4, vals);
    check_param_grads_ce(&mut net, &x, &[1]);
    check_input_grads_ce(&mut net, &x, &[1]);
}

#[test]
fn avgpool_grads() {
    let mut net = Sequential::new(vec![
        Box::new(AvgPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(4, 3, true, 21)),
    ]);
    let mut rng = MatrixRng::new(5);
    let x = Tensor4::from_vec(1, 1, 4, 4, rng.uniform_vec(16, -1.0, 1.0));
    check_param_grads_ce(&mut net, &x, &[2]);
    check_input_grads_ce(&mut net, &x, &[2]);
}

#[test]
fn full_small_cnn_grads() {
    let mut net = small_cnn(2, 4, 3, 30);
    let mut rng = MatrixRng::new(6);
    // small_cnn maxpool argmax must be stable; random values suffice at tol.
    let x = Tensor4::from_vec(2, 2, 4, 4, rng.uniform_vec(64, -1.0, 1.0));
    check_param_grads_ce(&mut net, &x, &[2, 0]);
}

#[test]
fn mse_path_grads() {
    let mut net = mlp(&[3, 6, 2], 40);
    let (x, y) = teacher_student(3, 2, 4, 41);
    let out = net.forward(&x, false);
    let (_, grad) = mse_loss(&out, &y);
    net.backward(&grad);
    let analytic: Vec<Vec<f64>> = net
        .parameters()
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();
    for (pi, param_grads) in analytic.iter().enumerate() {
        for (ei, &an) in param_grads.iter().enumerate() {
            let orig = net.parameters()[pi].value.as_slice()[ei];
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig + EPS;
            let (lp, _) = mse_loss(&net.forward(&x, false), &y);
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig - EPS;
            let (lm, _) = mse_loss(&net.forward(&x, false), &y);
            net.parameters_mut()[pi].value.as_mut_slice()[ei] = orig;
            let fd = (lp - lm) / (2.0 * EPS);
            assert!(
                (fd - an).abs() < TOL,
                "mse param {pi} elem {ei}: {fd} vs {an}"
            );
        }
    }
}

#[test]
fn training_reduces_loss_on_images() {
    use spdkfac_nn::optim::Sgd;
    let data = synthetic_images(3, 2, 8, 8, 0.3, 50);
    let mut net = small_cnn(2, 8, 3, 51);
    let mut sgd = Sgd::new(0.05, 0.9, 0.0);
    let (x, y) = data.batch(0, data.len());
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..30 {
        let out = net.forward(&x, false);
        let (loss, grad) = softmax_cross_entropy(&out, &y);
        net.backward(&grad);
        sgd.step(&mut net.parameters_mut());
        if first.is_none() {
            first = Some(loss);
        }
        last = loss;
    }
    assert!(
        last < 0.5 * first.unwrap(),
        "training failed to reduce loss: {first:?} -> {last}"
    );
}
