//! Property tests for the fusion planner, the load-balancing placement,
//! and the adaptive re-planning runtime.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use spdkfac_core::fusion::{self, FactorPipeline, FusionStrategy};
use spdkfac_core::perf::{AlphaBetaModel, ExpInverseModel};
use spdkfac_core::placement::{self, LbpWeight, PlacementStrategy, TensorAssignment};
use spdkfac_core::runtime::{self, AgreedModels, PlanStore, ReplanController, ReplanPolicy};

/// Strategy: a pipeline of 1..40 factors with non-decreasing ready times.
fn pipeline_strategy() -> impl Strategy<Value = FactorPipeline> {
    (1usize..40).prop_flat_map(|n| {
        (pvec(0.0f64..0.5, n), pvec(1usize..5_000_000, n)).prop_map(|(gaps, sizes)| {
            let mut ready = Vec::with_capacity(gaps.len());
            let mut t = 0.0;
            for g in gaps {
                t += g;
                ready.push(t);
            }
            FactorPipeline::new(ready, sizes).expect("constructed valid")
        })
    })
}

fn comm_strategy() -> impl Strategy<Value = AlphaBetaModel> {
    (1e-5f64..5e-3, 1e-11f64..1e-8).prop_map(|(a, b)| AlphaBetaModel::new(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_produce_valid_partitions(p in pipeline_strategy(), comm in comm_strategy()) {
        for s in [
            FusionStrategy::Naive,
            FusionStrategy::LayerWise,
            FusionStrategy::Threshold { elems: 4_000_000, cycle_s: 0.01 },
            FusionStrategy::Optimal,
        ] {
            let plan = fusion::plan(&p, &comm, s);
            prop_assert!(plan.is_valid_partition(p.len()), "{s:?} broke the partition");
        }
    }

    #[test]
    fn simulate_spans_are_serialized_and_causal(p in pipeline_strategy(), comm in comm_strategy()) {
        let plan = fusion::plan(&p, &comm, FusionStrategy::Optimal);
        let out = fusion::simulate(&p, &plan, &comm, 0.0);
        // Messages never overlap each other.
        for w in out.spans.windows(2) {
            prop_assert!(w[1].0 >= w[0].1 - 1e-12);
        }
        // A message never starts before its members are ready.
        for (bucket, &(start, end)) in plan.buckets().iter().zip(out.spans.iter()) {
            let ready = bucket.iter().map(|&i| p.ready[i]).fold(f64::MIN, f64::max);
            prop_assert!(start >= ready - 1e-12);
            prop_assert!(end >= start);
        }
    }

    #[test]
    fn optimal_never_loses_to_baselines_analytically(p in pipeline_strategy(), comm in comm_strategy()) {
        let otf = fusion::simulate(&p, &fusion::plan(&p, &comm, FusionStrategy::Optimal), &comm, 0.0);
        for s in [
            FusionStrategy::Naive,
            FusionStrategy::LayerWise,
            FusionStrategy::Threshold { elems: 4_000_000, cycle_s: 0.005 },
        ] {
            let alt = fusion::simulate(&p, &fusion::plan(&p, &comm, s), &comm, 0.0);
            prop_assert!(
                otf.finish <= alt.finish + 1e-9,
                "Optimal {:.6} lost to {s:?} {:.6}",
                otf.finish,
                alt.finish
            );
        }
    }

    #[test]
    fn placement_covers_every_tensor_exactly(
        dims in pvec(8usize..5000, 1..60),
        world in 1usize..16,
        weight_pick in 0usize..3,
    ) {
        let comp = ExpInverseModel::new(5e-4, 1.0e-3);
        let comm = AlphaBetaModel::new(8e-4, 6e-10);
        let weight = [LbpWeight::Dim, LbpWeight::DimSquared, LbpWeight::ModeledTime][weight_pick];
        let p = placement::place(&dims, world, &comp, &comm, PlacementStrategy::Lbp { weight });
        let mut count = vec![0usize; dims.len()];
        for g in 0..world {
            for t in p.set_for_gpu(g) {
                count[t] += 1;
            }
        }
        for (i, &c) in count.iter().enumerate() {
            if p.is_nct(i) {
                prop_assert_eq!(c, world, "NCT {} not replicated", i);
                // Eq. 18 precondition: NCT iff modelled compute < comm.
                prop_assert!(comp.time(dims[i]) < comm.time_packed(dims[i]));
            } else {
                prop_assert_eq!(c, 1, "CT {} not unique", i);
                prop_assert!(comp.time(dims[i]) >= comm.time_packed(dims[i]));
            }
        }
    }

    #[test]
    fn lbp_ct_balance_within_lpt_bound(
        dims in pvec(1000usize..6000, 1..80),
        world in 1usize..12,
    ) {
        // All dims ≥ 1000 are CTs under these models; LPT greedy guarantees
        // max load ≤ 4/3 · lower bound on the d² weight.
        let comp = ExpInverseModel::new(5e-4, 1.0e-3);
        let comm = AlphaBetaModel::new(8e-4, 6e-10);
        let p = placement::lbp(&dims, world, &comp, &comm, LbpWeight::DimSquared);
        let mut loads = vec![0.0f64; world];
        let mut total = 0.0;
        let mut max_item: f64 = 0.0;
        for (i, a) in p.assignments().iter().enumerate() {
            let w = (dims[i] as f64).powi(2);
            match a {
                TensorAssignment::Gpu(g) => {
                    loads[*g] += w;
                    total += w;
                    max_item = max_item.max(w);
                }
                TensorAssignment::AllGpus => {}
            }
        }
        let makespan = loads.iter().cloned().fold(0.0, f64::max);
        let lower = (total / world as f64).max(max_item);
        prop_assert!(makespan <= lower * 4.0 / 3.0 + 1e-6);
    }

    #[test]
    fn seqdist_round_robin_is_exact(n in 1usize..100, world in 1usize..16) {
        let dims = vec![64usize; n];
        let comp = ExpInverseModel::new(5e-4, 1.0e-3);
        let comm = AlphaBetaModel::new(8e-4, 6e-10);
        let p = placement::place(&dims, world, &comp, &comm, PlacementStrategy::SeqDist);
        for (i, a) in p.assignments().iter().enumerate() {
            prop_assert_eq!(*a, TensorAssignment::Gpu(i % world));
        }
    }

    #[test]
    fn alpha_beta_fit_is_consistent(alpha in 1e-6f64..1e-2, beta in 1e-12f64..1e-7) {
        let truth = AlphaBetaModel::new(alpha, beta);
        let samples: Vec<(usize, f64)> = (1..20).map(|i| {
            let m = i * 100_000;
            (m, truth.time(m))
        }).collect();
        let fit = AlphaBetaModel::fit(&samples);
        prop_assert!((fit.alpha - alpha).abs() <= alpha.max(1e-9) * 1e-6 + 1e-12);
        prop_assert!((fit.beta - beta).abs() <= beta * 1e-6);
    }

    #[test]
    fn alpha_beta_fit_recovers_planted_model_from_noisy_samples(
        alpha in 1e-6f64..1e-2,
        crossover in 1e3f64..1e6,
        noise in pvec(0.98f64..1.02, 40),
    ) {
        // β chosen so both parameters are identifiable on the sample grid
        // (the grid straddles the α-dominated and β-dominated regimes), as
        // when calibrating from measured collectives of mixed sizes.
        let beta = alpha / crossover;
        let truth = AlphaBetaModel::new(alpha, beta);
        let samples: Vec<(usize, f64)> = noise
            .iter()
            .enumerate()
            .map(|(k, n)| {
                let m = (((k + 1) as f64) * crossover / 10.0) as usize;
                (m, truth.time(m) * n)
            })
            .collect();
        let fit = AlphaBetaModel::fit(&samples);
        prop_assert!(
            (fit.alpha - alpha).abs() / alpha < 0.2,
            "alpha {} vs {}", fit.alpha, alpha
        );
        prop_assert!(
            (fit.beta - beta).abs() / beta < 0.1,
            "beta {} vs {}", fit.beta, beta
        );
    }

    #[test]
    fn exp_fit_recovers_planted_model_from_noisy_samples(
        alpha in 1e-6f64..1e-2,
        beta in 1e-4f64..3e-3,
        noise in pvec(0.98f64..1.02, 32),
    ) {
        let truth = ExpInverseModel::new(alpha, beta);
        let samples: Vec<(usize, f64)> = noise
            .iter()
            .enumerate()
            .map(|(k, n)| {
                let d = 32 * (k + 1);
                (d, truth.time(d) * n)
            })
            .collect();
        let fit = ExpInverseModel::fit(&samples);
        prop_assert!(
            (fit.alpha - alpha).abs() / alpha < 0.2,
            "alpha {} vs {}", fit.alpha, alpha
        );
        prop_assert!(
            (fit.beta - beta).abs() / beta < 0.5,
            "beta {} vs {}", fit.beta, beta
        );
    }

    #[test]
    fn nct_threshold_is_monotone_in_the_models(
        comp_alpha in 1e-6f64..1e-3,
        comp_beta in 1e-4f64..5e-3,
        comm_alpha in 1e-6f64..1e-2,
        comm_beta in 1e-12f64..1e-8,
        ka in 1.0f64..100.0,
        kb in 1.0f64..100.0,
    ) {
        // A uniformly *more expensive* comm model can only widen the set of
        // dims where inversion beats broadcasting, so the largest NCT dim
        // never shrinks; a more expensive comp model can only shrink it.
        let comp = ExpInverseModel::new(comp_alpha, comp_beta);
        let comm = AlphaBetaModel::new(comm_alpha, comm_beta);
        let max_d = 4096;
        let as_d = |t: Option<usize>| t.unwrap_or(0);

        let costlier_comm = AlphaBetaModel::new(comm_alpha * ka, comm_beta * kb);
        prop_assert!(
            as_d(comp.nct_threshold(&costlier_comm, max_d))
                >= as_d(comp.nct_threshold(&comm, max_d)),
            "threshold shrank under a costlier comm model"
        );

        let costlier_comp = ExpInverseModel::new(comp_alpha * ka, comp_beta);
        prop_assert!(
            as_d(costlier_comp.nct_threshold(&comm, max_d))
                <= as_d(comp.nct_threshold(&comm, max_d)),
            "threshold grew under a costlier comp model"
        );
    }

    #[test]
    fn replanning_from_identical_models_is_a_fixed_point(
        dims in pvec(8usize..4096, 1..40),
        world in 1usize..12,
        comm_alpha in 1e-5f64..5e-3,
        comm_beta in 1e-11f64..1e-8,
        bcast_scale in 0.5f64..2.0,
        inv_alpha in 1e-6f64..1e-2,
        inv_beta in 1e-4f64..3e-3,
        p in pipeline_strategy(),
    ) {
        // The SPMD-safety argument of `core::runtime` rests on re-planning
        // being a pure function of the agreed models: for *any* models,
        // pipeline, and placement problem, re-planning from the models that
        // produced the active epoch must reproduce it exactly — no swap, no
        // generation bump, no placement churn, ever.
        let agreed = AgreedModels {
            allreduce: AlphaBetaModel::new(comm_alpha, comm_beta),
            broadcast: AlphaBetaModel::new(comm_alpha * bcast_scale, comm_beta),
            inverse: ExpInverseModel::new(inv_alpha, inv_beta),
            allreduce_wire: None,
            encode: None,
        };
        let strategy = PlacementStrategy::Lbp { weight: LbpWeight::ModeledTime };
        let (p0, a0, g0) = runtime::replan(
            &agreed, &dims, world, strategy, None, Some(&p), Some(&p), FusionStrategy::Optimal,
        );
        let mut store = PlanStore::new(p0.clone(), a0, g0);
        let mut ctl = ReplanController::new(ReplanPolicy::EveryN(1));
        for round in 0..3 {
            // Re-planning with the standing placement as `prev` must also be
            // a fixed point: migration pricing only ever reinforces it.
            let standing = store.current().placement.clone();
            let (pl, a, g) = runtime::replan(
                &agreed, &dims, world, strategy, Some(&standing), Some(&p), Some(&p),
                FusionStrategy::Optimal,
            );
            let out = ctl.consider(&mut store, pl, a, g);
            prop_assert!(!out.swapped, "round {round}: identical models swapped the epoch");
            prop_assert_eq!(out.generation, 0);
            prop_assert_eq!(out.placement_flips, 0);
        }
        prop_assert_eq!(&store.current().placement, &p0);
    }

    #[test]
    fn exp_fit_is_consistent(alpha in 1e-6f64..1e-2, beta in 1e-5f64..3e-3) {
        let truth = ExpInverseModel::new(alpha, beta);
        let samples: Vec<(usize, f64)> = [64usize, 128, 256, 512, 1024, 2048]
            .iter()
            .map(|&d| (d, truth.time(d)))
            .collect();
        let fit = ExpInverseModel::fit(&samples);
        prop_assert!((fit.alpha - alpha).abs() / alpha < 1e-6);
        prop_assert!((fit.beta - beta).abs() / beta < 1e-6);
    }
}
