//! Error type for the K-FAC algorithms.

use spdkfac_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the K-FAC optimizers and planners.
#[derive(Debug, Clone, PartialEq)]
pub enum KfacError {
    /// A damped Kronecker factor failed to invert (damping too small for
    /// the numerical rank of the statistics).
    FactorInversion {
        /// Index of the preconditionable layer.
        layer: usize,
        /// Which factor failed.
        factor: FactorSide,
        /// Underlying numerical error.
        source: TensorError,
    },
    /// A planner was given inconsistent inputs (e.g. mismatched dim/time
    /// vector lengths).
    InvalidPlanInput {
        /// Description of the inconsistency.
        reason: String,
    },
}

/// Which Kronecker factor of a layer an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorSide {
    /// The input-side factor `A_{l-1}`.
    A,
    /// The output-side factor `G_l`.
    G,
}

impl fmt::Display for KfacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KfacError::FactorInversion {
                layer,
                factor,
                source,
            } => {
                let side = match factor {
                    FactorSide::A => "A",
                    FactorSide::G => "G",
                };
                write!(
                    f,
                    "failed to invert factor {side} of layer {layer}: {source}"
                )
            }
            KfacError::InvalidPlanInput { reason } => {
                write!(f, "invalid planner input: {reason}")
            }
        }
    }
}

impl Error for KfacError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KfacError::FactorInversion { source, .. } => Some(source),
            KfacError::InvalidPlanInput { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_layer_and_side() {
        let e = KfacError::FactorInversion {
            layer: 3,
            factor: FactorSide::G,
            source: TensorError::NotPositiveDefinite { pivot: 0 },
        };
        let s = e.to_string();
        assert!(s.contains("G"));
        assert!(s.contains('3'));
        assert!(e.source().is_some());
    }
}
