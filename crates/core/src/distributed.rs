//! Multi-worker trainers over real in-process collectives: S-SGD, D-KFAC,
//! MPD-KFAC and SPD-KFAC.
//!
//! All three K-FAC variants execute the *same* mathematics (Eq. 13); they
//! differ only in **how Kronecker factors are communicated** and **where the
//! inverses are computed**:
//!
//! | Variant  | factor communication | inverse placement |
//! |----------|----------------------|-------------------|
//! | D-KFAC   | one bulk all-reduce after backward | every GPU inverts everything ([`PlacementStrategy::NonDist`]) |
//! | MPD-KFAC | one bulk all-reduce after backward | round-robin, broadcast results ([`PlacementStrategy::SeqDist`]) |
//! | SPD-KFAC | pipelined per-bucket all-reduces during forward/backward with dynamic tensor fusion (Eq. 15) | Algorithm 1 (LBP) with CT/NCT classification |
//!
//! Consequently the parameter trajectories of the three variants agree to
//! floating-point reordering noise — asserted by the integration tests —
//! which is the paper's premise for comparing them on wall-clock time only
//! (§VI: *"our proposed algorithms are systemic optimizations without
//! affecting the numerical results"*).

use crate::calibrate::Calibrator;
use crate::ekfac::precondition_ekfac;
use crate::elastic::{ElasticPolicy, FactorCheckpoint, MembershipSpan, TrainCheckpoint};
use crate::factors::{local_factor_a, local_factor_g, FactorState};
use crate::fusion::{self, FactorPipeline, FusionStrategy};
use crate::optimizer::KfacConfig;
use crate::perf::{AlphaBetaModel, ExpInverseModel};
use crate::placement::{self, PlacementStrategy, TensorAssignment};
use crate::precond::{apply_kl_clip, build_directions};
use crate::runtime::{self, ReplanController, ReplanPolicy};
use spdkfac_collectives::{
    connect_elastic, elastic_poll, Backend, CommError, CommGroup, JoinIntent, PendingOp, TcpConfig,
    WirePolicy, WorkerComm,
};
use spdkfac_nn::data::Dataset;
use spdkfac_nn::loss::softmax_cross_entropy;
use spdkfac_nn::optim::Sgd;
use spdkfac_nn::Sequential;
use spdkfac_obs::{Phase, Recorder, SpanGuard};
use spdkfac_tensor::eig::sym_eig;
use spdkfac_tensor::{chol, Matrix, SymPacked};
use std::sync::Arc;
use std::time::Instant;

/// An in-flight fused factor all-reduce: the `(layer, side)` tensors it
/// carries, their packed lengths, and the async handle to wait on.
type PendingFactors = (Vec<(usize, Side)>, Vec<usize>, PendingOp);

/// Which training algorithm the workers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// First-order baseline: gradients all-reduced, no preconditioning.
    SSgd,
    /// D-KFAC: bulk factor aggregation, local inversion everywhere.
    DKfac,
    /// MPD-KFAC: bulk factor aggregation, round-robin distributed inversion
    /// with result broadcasts (the prior state of the art, §II-B).
    MpdKfac,
    /// SPD-KFAC: pipelined factor aggregation with dynamic tensor fusion +
    /// load-balancing inverse placement (the paper's contribution, §IV).
    SpdKfac,
    /// Distributed EKFAC (extension): SPD-KFAC's pipelined aggregation and
    /// LBP machinery, but the per-tensor operation is an eigendecomposition
    /// (broadcasting `Q‖λ`) and preconditioning runs in the Kronecker
    /// eigenbasis with moment-corrected scales (see [`crate::ekfac`]).
    EkfacSpd,
}

/// Configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Number of worker ranks.
    pub world: usize,
    /// Training algorithm.
    pub algorithm: Algorithm,
    /// K-FAC hyper-parameters (ignored by [`Algorithm::SSgd`] except lr /
    /// momentum / weight decay).
    pub kfac: KfacConfig,
    /// Fusion strategy for SPD-KFAC's factor pipeline.
    pub fusion: FusionStrategy,
    /// Inverse placement strategy override. Defaults depend on the
    /// algorithm (NonDist / SeqDist / LBP); set explicitly for ablations.
    pub placement: Option<PlacementStrategy>,
    /// Inversion-cost model used by LBP's NCT test.
    pub comp_model: ExpInverseModel,
    /// Broadcast-cost model used by LBP's NCT test.
    pub comm_model: AlphaBetaModel,
    /// WFBP gradient fusion-buffer capacity in elements: gradients are
    /// all-reduced asynchronously during backward once this many elements
    /// have accumulated (Horovod's 64 MB buffer ≙ 16 M fp32 elements).
    pub grad_fusion_elems: usize,
    /// Adaptive re-planning policy (see [`crate::runtime`]). At each due
    /// inter-iteration barrier every rank refits its calibrator, the fitted
    /// coefficients are agreement-all-reduced, and placement + fusion plans
    /// are deterministically recomputed from the agreed models; a changed
    /// plan is swapped in atomically with a generation bump. Calibration
    /// samples come off the recorder, so under [`train`] (no recorder) a
    /// due barrier still synchronizes but re-plans from the baseline models
    /// — a fixed point.
    pub replan: ReplanPolicy,
    /// Per-op-kind wire encoding for the collectives (see
    /// [`spdkfac_collectives::wire`]). Defaults to the bit-exact f64
    /// pass-through; compressed formats (`WirePolicy::parse("f16")`,
    /// `"grad=topk:0.01,factor=f16"`, …) trade bounded numerical error for
    /// wire bytes. Re-plan barriers account for the format: the agreed
    /// wire-byte and codec fits are composed into an effective per-element
    /// model for the factor format before fusion planning.
    pub wire: WirePolicy,
}

impl DistributedConfig {
    /// A ready-to-run configuration for `world` workers and `algorithm`,
    /// with paper-like default cost models.
    pub fn new(world: usize, algorithm: Algorithm) -> Self {
        DistributedConfig {
            world,
            algorithm,
            kfac: KfacConfig::default(),
            fusion: FusionStrategy::Optimal,
            placement: None,
            // Arbitrary-but-plausible CPU-scale models; placement
            // correctness does not depend on the constants.
            comp_model: ExpInverseModel::new(5e-5, 2e-3),
            comm_model: AlphaBetaModel::new(2e-4, 2e-9),
            grad_fusion_elems: 16 * 1024 * 1024,
            replan: ReplanPolicy::Off,
            wire: WirePolicy::default(),
        }
    }

    fn effective_placement(&self) -> PlacementStrategy {
        self.placement.unwrap_or(match self.algorithm {
            Algorithm::SSgd | Algorithm::DKfac => PlacementStrategy::NonDist,
            Algorithm::MpdKfac => PlacementStrategy::SeqDist,
            Algorithm::SpdKfac | Algorithm::EkfacSpd => PlacementStrategy::default(),
        })
    }
}

/// Outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Globally-averaged training loss per iteration.
    pub losses: Vec<f64>,
    /// Flattened final parameters (identical on every rank up to fp noise;
    /// taken from rank 0).
    pub final_params: Vec<f64>,
    /// Total `f64` elements moved over the ring during the run.
    pub traffic_elements: u64,
    /// Total post-encoding bytes actually put on the wire — equals
    /// `8 * traffic_elements` under the f64 pass-through, less under
    /// compressed wire formats.
    pub traffic_wire_bytes: u64,
    /// Collective operations executed (per-rank executions summed).
    pub collective_ops: u64,
    /// Stable-membership intervals the run passed through. Non-elastic runs
    /// report a single epoch-0 span; elastic runs append one span per
    /// membership epoch they participated in (the resize timeline).
    pub membership: Vec<MembershipSpan>,
}

/// The unified entry point to every trainer mode — local in-process groups,
/// a single rank of an external (TCP) group, and the elastic fault-tolerant
/// runtime — configured fluently:
///
/// ```
/// use spdkfac_core::distributed::{Algorithm, DistributedConfig, TrainSession};
/// use spdkfac_nn::data::gaussian_blobs;
/// use spdkfac_nn::models::mlp;
///
/// let mut cfg = DistributedConfig::new(2, Algorithm::SpdKfac);
/// cfg.kfac.damping = 0.1;
/// cfg.kfac.momentum = 0.0;
/// let data = gaussian_blobs(3, 6, 16, 0.3, 17);
/// let r = TrainSession::builder(cfg)
///     .run(&|| mlp(&[6, 12, 3], 3), &data, 4, 4)
///     .expect("local run");
/// assert_eq!(r.losses.len(), 4);
/// ```
///
/// Modes (chosen by which builder methods were called):
///
/// - **Local** (default): spawns `config.world` worker threads over the
///   in-process backend — the replacement for the deprecated [`train`] /
///   [`train_with_recorder`].
/// - **Endpoint** ([`TrainSession::endpoint`]): runs this process as one
///   rank of an already-connected group — the replacement for the
///   deprecated [`train_worker`]. Peer failures surface as `Err` instead
///   of a panic.
/// - **Elastic** ([`TrainSession::elastic`]): joins an
///   [`spdkfac_collectives::ElasticRendezvous`] and survives membership
///   changes — rank death shrinks the world at the next barrier, joiners
///   are absorbed with a full state handoff (see [`crate::elastic`] and
///   DESIGN §2.15).
///
/// `build` must be deterministic so all replicas start identical.
#[derive(Debug)]
pub struct TrainSession {
    config: DistributedConfig,
    recorder: Option<Arc<Recorder>>,
    endpoint: Option<WorkerComm>,
    elastic: Option<ElasticPolicy>,
}

impl TrainSession {
    /// Starts configuring a session running `config`.
    pub fn builder(config: DistributedConfig) -> TrainSession {
        TrainSession {
            config,
            recorder: None,
            endpoint: None,
            elastic: None,
        }
    }

    /// Attaches a recorder: every worker records phase-tagged spans and
    /// metrics into `rec`, laid out as [`spdkfac_obs::TrackLayout::trainer`]
    /// — rank `r`'s compute thread on track `r`, its communication thread on
    /// track `world + r` (spans on out-of-range tracks are dropped, so a
    /// recorder sized for the initial world stays safe across elastic
    /// resizes). After the run,
    /// `IterationBreakdown::from_recorder(&rec, world)` yields the measured
    /// counterpart of the simulator's breakdown.
    pub fn recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Runs this process as one rank of an externally-connected group
    /// (e.g. a [`Backend::Tcp`] endpoint from a multi-process launcher)
    /// instead of spawning local worker threads. Mutually exclusive with
    /// [`TrainSession::elastic`].
    pub fn endpoint(mut self, comm: WorkerComm) -> Self {
        self.endpoint = Some(comm);
        self
    }

    /// Joins an elastic rendezvous instead of a fixed-membership group; the
    /// run then survives rank deaths (world shrinks at the next barrier)
    /// and absorbs joiners (world grows, with checkpointed state handoff).
    /// `config.world` is ignored — the rendezvous dictates the world size
    /// of each membership epoch. Mutually exclusive with
    /// [`TrainSession::endpoint`].
    pub fn elastic(mut self, policy: ElasticPolicy) -> Self {
        self.elastic = Some(policy);
        self
    }

    /// Trains `iters` iterations of `config.algorithm` on `dataset` with
    /// `batch` samples per rank per iteration, and returns rank-valid
    /// results (losses are globally averaged, so all ranks report the same
    /// values).
    ///
    /// # Errors
    ///
    /// Communication failures in endpoint mode, and unrecoverable elastic
    /// failures (world below `min_world`, epoch budget exhausted, corrupt
    /// state handoff) in elastic mode. Local mode is infallible.
    ///
    /// # Panics
    ///
    /// Panics if any rank's data shard is smaller than `batch`, or if a
    /// damped factor fails to invert (raise `config.kfac.damping`) — the
    /// numerics stay fail-fast in every mode.
    pub fn run(
        self,
        build: &(dyn Fn() -> Sequential + Sync),
        dataset: &Dataset,
        iters: usize,
        batch: usize,
    ) -> Result<RunResult, CommError> {
        match (self.endpoint, self.elastic) {
            (Some(_), Some(_)) => Err(CommError::Rendezvous(
                "TrainSession: endpoint and elastic modes are mutually exclusive".into(),
            )),
            (None, Some(policy)) => run_elastic(
                &self.config,
                &policy,
                build,
                dataset,
                iters,
                batch,
                self.recorder,
            ),
            (Some(comm), None) => worker_impl(
                &self.config,
                build,
                dataset,
                iters,
                batch,
                comm,
                self.recorder,
            ),
            (None, None) => Ok(local_train_impl(
                &self.config,
                build,
                dataset,
                iters,
                batch,
                self.recorder.as_ref(),
            )),
        }
    }
}

/// Trains `iters` iterations of `cfg.algorithm` on `dataset` with one model
/// replica per rank (built by `build`, which must be deterministic so all
/// replicas start identical) and `batch` samples per rank per iteration.
///
/// # Panics
///
/// Panics if any rank's data shard is smaller than `batch`, or if a damped
/// factor fails to invert (raise `cfg.kfac.damping`).
#[deprecated(note = "use TrainSession::builder(cfg).run(...)")]
pub fn train(
    cfg: &DistributedConfig,
    build: &(dyn Fn() -> Sequential + Sync),
    dataset: &Dataset,
    iters: usize,
    batch: usize,
) -> RunResult {
    local_train_impl(cfg, build, dataset, iters, batch, None)
}

/// [`train`], instrumented: every worker records phase-tagged spans and
/// metrics into `rec` (see [`TrainSession::recorder`] for the layout).
///
/// # Panics
///
/// As [`train`].
#[deprecated(note = "use TrainSession::builder(cfg).recorder(rec).run(...)")]
pub fn train_with_recorder(
    cfg: &DistributedConfig,
    build: &(dyn Fn() -> Sequential + Sync),
    dataset: &Dataset,
    iters: usize,
    batch: usize,
    rec: &Arc<Recorder>,
) -> RunResult {
    local_train_impl(cfg, build, dataset, iters, batch, Some(rec))
}

fn local_train_impl(
    cfg: &DistributedConfig,
    build: &(dyn Fn() -> Sequential + Sync),
    dataset: &Dataset,
    iters: usize,
    batch: usize,
    rec: Option<&Arc<Recorder>>,
) -> RunResult {
    let endpoints = CommGroup::builder()
        .world_size(cfg.world)
        .backend(Backend::Local)
        .wire_policy(cfg.wire)
        .build()
        .expect("local backend is infallible")
        .into_endpoints();
    let mut result: Option<RunResult> = None;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for comm in endpoints {
            let cfg = cfg.clone();
            let rec = rec.map(Arc::clone);
            handles.push(s.spawn(move || {
                let rank = comm.rank();
                worker_impl(&cfg, build, dataset, iters, batch, comm, rec)
                    .unwrap_or_else(|e| panic!("rank {rank}: {e}"))
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            let r = h.join().expect("worker panicked");
            if rank == 0 {
                result = Some(r);
            }
        }
    });
    result.expect("rank 0 result missing")
}

/// Per-factor bookkeeping for the SPD pipeline: which state and side a
/// pipeline position refers to.
#[derive(Debug, Clone, Copy)]
enum Side {
    A,
    G,
}

/// Per-worker span handle: phase spans on the worker's compute track
/// (`track == rank`), all no-ops when no recorder is attached.
struct WorkerObs {
    rec: Option<Arc<Recorder>>,
    track: usize,
}

impl WorkerObs {
    /// Opens a phase span on this worker's compute track; recorded on drop.
    fn span(&self, phase: Phase) -> Option<SpanGuard<'_>> {
        self.rec.as_deref().map(|r| r.span(self.track, phase))
    }

    /// As [`WorkerObs::span`], carrying a payload size in the span metadata
    /// (tensor dimension for inversions) for online calibration.
    fn sized_span(&self, phase: Phase, size: usize) -> Option<SpanGuard<'_>> {
        self.span(phase).map(|g| g.sized(size))
    }

    /// As [`WorkerObs::span`], with a display label. The per-iteration
    /// update spans are labeled `iter<N>` so the live telemetry monitor
    /// and merged traces have explicit iteration boundaries.
    fn labeled_span(&self, phase: Phase, label: String) -> Option<SpanGuard<'_>> {
        self.rec
            .as_deref()
            .map(|r| r.span_labeled(self.track, phase, label))
    }

    /// Records one realized fused-message flush (satellite of §IV-A): the
    /// planned bucket counts are published as gauges once, but the bytes
    /// actually moved per flush are only known here. `pass` is `"a"` or
    /// `"g"`.
    fn record_flush(&self, pass: &str, elems: usize) {
        if let Some(r) = &self.rec {
            let m = r.metrics();
            m.histogram("fusion/realized/elems").observe(elems as f64);
            m.counter(&format!("fusion/{pass}/flushes")).inc();
            m.counter(&format!("fusion/{pass}/realized_elems"))
                .add(elems as u64);
        }
    }
}

/// Runs one rank's full training loop over an already-connected communicator
/// endpoint — the backend-agnostic entry point beneath the local trainer.
///
/// # Panics
///
/// Panics on any communication failure (the historical behavior). The
/// replacement — `TrainSession::builder(cfg).endpoint(comm)` — surfaces
/// those as `Err` instead.
#[deprecated(note = "use TrainSession::builder(cfg).endpoint(comm).run(...)")]
pub fn train_worker(
    cfg: &DistributedConfig,
    build: &(dyn Fn() -> Sequential + Sync),
    dataset: &Dataset,
    iters: usize,
    batch: usize,
    comm: WorkerComm,
    rec: Option<Arc<Recorder>>,
) -> RunResult {
    let rank = comm.rank();
    worker_impl(cfg, build, dataset, iters, batch, comm, rec)
        .unwrap_or_else(|e| panic!("rank {rank}: {e}"))
}

/// One rank over an already-connected endpoint: fresh state, one segment.
fn worker_impl(
    cfg: &DistributedConfig,
    build: &(dyn Fn() -> Sequential + Sync),
    dataset: &Dataset,
    iters: usize,
    batch: usize,
    comm: WorkerComm,
    rec: Option<Arc<Recorder>>,
) -> Result<RunResult, CommError> {
    let rank = comm.rank();
    let world = comm.world_size();
    // Communication threads record on tracks `world..2*world`
    // (TrackLayout::trainer); the phase of each collective is captured at
    // submission time from the worker's current phase tag.
    if let Some(r) = &rec {
        comm.set_recorder(Arc::clone(r), world + rank);
    }
    let obs = WorkerObs { rec, track: rank };
    let mut ws = WorkerState::fresh(cfg, build);
    train_segment(cfg, &mut ws, dataset, iters, batch, &comm, &obs, None)?;
    let stats = comm.stats();
    Ok(RunResult {
        losses: ws.losses,
        final_params: ws.net.flat_params(),
        traffic_elements: stats.elements_sent(),
        traffic_wire_bytes: stats.wire_bytes_sent(),
        collective_ops: stats.ops_executed(),
        membership: vec![MembershipSpan {
            epoch: 0,
            world,
            from_iter: 0,
        }],
    })
}

/// A rank's complete mutable training state, detached from any communicator
/// — the unit that survives an elastic membership change. Everything else
/// the loop needs (shards, placement, fusion plans, calibration) is derived
/// per segment from this state plus the current world size.
struct WorkerState {
    net: Sequential,
    sgd: Sgd,
    states: Vec<FactorState>,
    ekfac_bases: Vec<Option<(Matrix, Vec<f64>)>>,
    ekfac_scales: Vec<Option<Matrix>>,
    losses: Vec<f64>,
    /// Next iteration to execute; prior iterations are complete.
    next_iter: usize,
}

impl WorkerState {
    fn fresh(cfg: &DistributedConfig, build: &(dyn Fn() -> Sequential + Sync)) -> WorkerState {
        let net = build();
        let pre = net.preconditionable();
        let nlayers = pre.len();
        WorkerState {
            sgd: Sgd::new(cfg.kfac.lr, cfg.kfac.momentum, cfg.kfac.weight_decay),
            states: pre.iter().map(|&li| FactorState::new(li)).collect(),
            ekfac_bases: vec![None; 2 * nlayers],
            ekfac_scales: vec![None; nlayers],
            losses: Vec::new(),
            next_iter: 0,
            net,
        }
    }

    fn checkpoint(&self) -> TrainCheckpoint {
        TrainCheckpoint::capture(
            self.next_iter,
            &self.losses,
            &self.net,
            &self.sgd,
            &self.states,
            &self.ekfac_bases,
            &self.ekfac_scales,
        )
    }

    fn restore(&mut self, ckpt: &TrainCheckpoint) {
        self.net.set_flat_params(&ckpt.params);
        self.sgd.set_velocity(ckpt.velocity.clone());
        self.states = ckpt.factors.iter().map(FactorCheckpoint::restore).collect();
        self.ekfac_bases = ckpt.ekfac_bases.clone();
        self.ekfac_scales = ckpt.ekfac_scales.clone();
        self.losses = ckpt.losses.clone();
        self.next_iter = ckpt.iter;
    }
}

/// How a [`train_segment`] call ended (when it didn't fail).
enum SegmentEnd {
    /// All requested iterations are complete.
    Done,
    /// The group agreed (via the loss all-reduce's piggybacked flag) to
    /// pause at this barrier and re-form with pending joiners.
    ResizeRequested,
    /// This rank's `leave_after` budget is spent; the caller should drop
    /// the endpoint without rejoining.
    Leave,
}

/// Elastic context of one segment; `None` runs the loop in classic
/// fixed-membership mode (bit-identical to the historical trainer).
struct SegmentElastic {
    tcp: TcpConfig,
    poll_every: usize,
    leave_after: Option<usize>,
}

/// Fallible sync all-reduce: the async op plus an error-propagating wait
/// (the `WorkerComm` sync wrappers panic instead, which elastic segments
/// must not).
fn allreduce_avg_checked(comm: &WorkerComm, buf: &mut [f64]) -> Result<(), CommError> {
    let out = comm.allreduce_avg_async(buf.to_vec()).wait()?;
    buf.copy_from_slice(&out.data);
    Ok(())
}

/// Runs iterations `ws.next_iter..iters` of one rank's training loop over
/// `comm`, mutating `ws` in place so the caller can hand the state to a
/// successor group on membership changes. Communication failures surface as
/// `Err` with `ws` left at the last completed iteration boundary; numeric
/// failures stay panics in every mode.
#[allow(clippy::too_many_arguments)]
fn train_segment(
    cfg: &DistributedConfig,
    ws: &mut WorkerState,
    dataset: &Dataset,
    iters: usize,
    batch: usize,
    comm: &WorkerComm,
    obs: &WorkerObs,
    elastic: Option<&SegmentElastic>,
) -> Result<SegmentEnd, CommError> {
    let rank = comm.rank();
    let world = comm.world_size();
    let WorkerState {
        net,
        sgd,
        states,
        ekfac_bases,
        ekfac_scales,
        losses,
        next_iter,
    } = ws;
    let shard = dataset.shard(world, rank);
    assert!(
        shard.len() >= batch,
        "rank {rank}: shard of {} samples cannot supply batches of {batch}",
        shard.len()
    );

    // Preconditionable-layer bookkeeping. The factor states live in `ws`
    // (they survive segments); only the index map is rebuilt here.
    let pre = net.preconditionable();
    let nlayers = pre.len();
    let mut state_of_layer = vec![None; net.len()];
    assert_eq!(states.len(), nlayers, "factor state count mismatch");
    for (si, &li) in pre.iter().enumerate() {
        state_of_layer[li] = Some(si);
        assert_eq!(states[si].layer(), li, "factor state layer mismatch");
    }
    let dims = net.kfac_dims(); // (a_dim, g_dim) per state
    let a_sizes: Vec<usize> = dims.iter().map(|&(a, _)| a * (a + 1) / 2).collect();
    let g_sizes: Vec<usize> = dims.iter().map(|&(_, g)| g * (g + 1) / 2).collect();

    // Inverse placement over the 2L tensors (A_l, G_l interleaved). The
    // generation-0 plan goes into the epoch-versioned store; re-plan
    // barriers may swap it later (see `crate::runtime`).
    let inv_dims: Vec<usize> = dims.iter().flat_map(|&(a, g)| [a, g]).collect();
    let inv_placement = placement::place(
        &inv_dims,
        world,
        &cfg.comp_model,
        &cfg.comm_model,
        cfg.effective_placement(),
    );
    // Publish the load balancer's verdict once (rank 0): CT/NCT counts and
    // the modelled per-GPU load it balanced (Eq. 21).
    if rank == 0 {
        if let Some(r) = &obs.rec {
            let m = r.metrics();
            let ncts = inv_placement.num_nct();
            m.gauge("placement/nct").set(ncts as f64);
            m.gauge("placement/ct")
                .set((inv_placement.assignments().len() - ncts) as f64);
            let loads = inv_placement.per_gpu_load(&inv_dims, &cfg.comp_model, &cfg.comm_model);
            for (g, load) in loads.iter().enumerate() {
                m.gauge(&format!("placement/gpu{g}/load")).set(*load);
            }
        }
    }
    let mut store = runtime::PlanStore::new(inv_placement, None, None);
    let mut controller = ReplanController::new(cfg.replan);
    let mut calibrator = Calibrator::new(cfg.comp_model, cfg.comm_model);
    // Recorder high-water mark: spans ending before this were already fed
    // to the calibrator at an earlier barrier.
    let mut ingested_until = 0.0f64;
    // Measured pipelines saved from the iteration-0 plan agreement, so
    // re-plan barriers can recompute fusion plans from the agreed models.
    let mut a_pipeline: Option<FactorPipeline> = None;
    let mut g_pipeline: Option<FactorPipeline> = None;

    // EKFAC extension state (per-tensor eigenbases and per-layer scales)
    // lives in `ws` alongside the optimizer; assert shapes after a restore.
    assert_eq!(ekfac_bases.len(), 2 * nlayers, "eigenbasis count mismatch");
    assert_eq!(ekfac_scales.len(), nlayers, "eigenscale count mismatch");

    let flight = spdkfac_obs::flight::global();
    let seg_start = *next_iter;
    // A mid-iteration abort records the interrupted iteration's loss (it is
    // pushed before the factor/inverse ops that may fail) without advancing
    // the resume point; the retry re-records it, so drop any tail past the
    // last completed iteration. SPMD-safe: every rank resumes from the same
    // handed-off state.
    losses.truncate(seg_start);
    for iter in seg_start..iters {
        let flight_iter_start = flight.now();
        let start = (iter * batch) % (shard.len() - batch + 1);
        let (x, y) = shard.batch(start, batch);
        let capture = cfg.algorithm != Algorithm::SSgd;

        // ---------- Forward (+ pipelined A-factor aggregation for SPD) ----
        let mut a_ready = vec![0.0f64; nlayers];
        let mut pending: Vec<PendingFactors> = Vec::new();
        let pipelined = matches!(cfg.algorithm, Algorithm::SpdKfac | Algorithm::EkfacSpd);
        // Collectives submitted during the forward pass are the pipelined
        // A-factor all-reduces.
        comm.set_phase(Phase::FactorComm);
        let forward_span = obs.span(Phase::FfBp);
        let out = if pipelined {
            let plan = store.current().a_fusion.clone().unwrap_or_else(|| {
                fusion::plan(
                    &FactorPipeline::new(vec![0.0; nlayers], a_sizes.clone()).expect("valid"),
                    &cfg.comm_model,
                    FusionStrategy::LayerWise,
                )
            });
            let t0 = Instant::now();
            let mut pos = 0usize;
            let mut ctl = fusion::FusionController::new(plan);
            let mut buf: Vec<SymPacked> = Vec::new();
            let out = net.forward_each(&x, capture, |_, layer| {
                if let Some(a_rows) = layer.take_a_stat() {
                    a_ready[pos] = t0.elapsed().as_secs_f64();
                    let factor = {
                        let _fc = obs.span(Phase::FactorComp);
                        SymPacked::from_matrix(&local_factor_a(&a_rows))
                    };
                    buf.push(factor);
                    if let Some(positions) = ctl.offer(pos) {
                        let members: Vec<(usize, Side)> =
                            positions.iter().map(|&p| (p, Side::A)).collect();
                        let sizes: Vec<usize> = buf.iter().map(|s| s.len()).collect();
                        let concat: Vec<f64> =
                            buf.drain(..).flat_map(SymPacked::into_vec).collect();
                        if rank == 0 {
                            obs.record_flush("a", concat.len());
                        }
                        pending.push((members, sizes, comm.allreduce_avg_async(concat)));
                    }
                    pos += 1;
                }
            });
            assert!(ctl.is_drained(), "unflushed A-factor bucket");
            out
        } else {
            net.forward(&x, capture)
        };
        drop(forward_span);

        // ---------- Loss ------------------------------------------------
        let (local_loss, grad) = softmax_cross_entropy(&out, &y);

        // ---------- Backward: WFBP gradient aggregation (all algorithms)
        // and pipelined G-factor aggregation (SPD). Gradients of each layer
        // become ready as its backward runs; they join a fusion buffer and
        // are all-reduced asynchronously once `grad_fusion_elems` is reached
        // — the wait-free back-propagation of §II-A.
        let mut g_ready = vec![0.0f64; nlayers];
        let mut spd_g = if pipelined {
            let plan = store.current().g_fusion.clone().unwrap_or_else(|| {
                let rev_sizes: Vec<usize> = g_sizes.iter().rev().copied().collect();
                fusion::plan(
                    &FactorPipeline::new(vec![0.0; nlayers], rev_sizes).expect("valid"),
                    &cfg.comm_model,
                    FusionStrategy::LayerWise,
                )
            });
            Some((
                fusion::FusionController::new(plan),
                Vec::<SymPacked>::new(),
                0usize,
            ))
        } else {
            None
        };
        // In-flight gradient buckets: (segments = (layer, param, len), handle).
        type GradSegment = (usize, usize, usize);
        let mut grad_pending: Vec<(Vec<GradSegment>, PendingOp)> = Vec::new();
        let mut grad_buf: Vec<f64> = Vec::new();
        let mut grad_segments: Vec<GradSegment> = Vec::new();
        let t0 = Instant::now();
        let backward_span = obs.span(Phase::FfBp);
        net.backward_each(&grad, |li, layer| {
            // (a) SPD: G-factor capture + fused async all-reduce.
            if let Some((ctl, buf, pos)) = spd_g.as_mut() {
                if let Some((g_rows, n)) = layer.take_g_stat() {
                    g_ready[*pos] = t0.elapsed().as_secs_f64();
                    let factor = {
                        let _fc = obs.span(Phase::FactorComp);
                        SymPacked::from_matrix(&local_factor_g(&g_rows, n))
                    };
                    buf.push(factor);
                    if let Some(positions) = ctl.offer(*pos) {
                        let members: Vec<(usize, Side)> =
                            positions.iter().map(|&p| (p, Side::G)).collect();
                        let sizes: Vec<usize> = buf.iter().map(|s| s.len()).collect();
                        let concat: Vec<f64> =
                            buf.drain(..).flat_map(SymPacked::into_vec).collect();
                        if rank == 0 {
                            obs.record_flush("g", concat.len());
                        }
                        comm.set_phase(Phase::FactorComm);
                        pending.push((members, sizes, comm.allreduce_avg_async(concat)));
                    }
                    *pos += 1;
                }
            }
            // (b) WFBP: this layer's gradients join the fusion buffer.
            for (pi, p) in layer.params().iter().enumerate() {
                grad_segments.push((li, pi, p.grad.as_slice().len()));
                grad_buf.extend_from_slice(p.grad.as_slice());
            }
            if grad_buf.len() >= cfg.grad_fusion_elems {
                comm.set_phase(Phase::GradComm);
                grad_pending.push((
                    std::mem::take(&mut grad_segments),
                    comm.allreduce_avg_async(std::mem::take(&mut grad_buf)),
                ));
            }
        });
        drop(backward_span);
        if let Some((ctl, _, _)) = &spd_g {
            assert!(ctl.is_drained(), "unflushed G-factor bucket");
        }
        if !grad_buf.is_empty() {
            comm.set_phase(Phase::GradComm);
            grad_pending.push((
                std::mem::take(&mut grad_segments),
                comm.allreduce_avg_async(std::mem::take(&mut grad_buf)),
            ));
        }

        // ---------- Factor aggregation (bulk path for D/MPD) --------------
        if matches!(cfg.algorithm, Algorithm::DKfac | Algorithm::MpdKfac) {
            let fc = obs.span(Phase::FactorComp);
            let caps = net.take_captures();
            let mut concat = Vec::new();
            let mut members = Vec::new();
            let mut sizes = Vec::new();
            for (li, cap) in &caps {
                let si = state_of_layer[*li].expect("capture from unknown layer");
                let a = SymPacked::from_matrix(&cap.factor_a());
                let g = SymPacked::from_matrix(&cap.factor_g());
                members.push((si, Side::A));
                sizes.push(a.len());
                concat.extend_from_slice(a.as_slice());
                members.push((si, Side::G));
                sizes.push(g.len());
                concat.extend_from_slice(g.as_slice());
            }
            drop(fc);
            comm.set_phase(Phase::FactorComm);
            pending.push((members, sizes, comm.allreduce_avg_async(concat)));
        }

        // ---------- Install averaged gradients ---------------------------
        for (segments, handle) in grad_pending.drain(..) {
            let data = handle.wait()?.data;
            let mut off = 0usize;
            let layers = net.layers_mut();
            for (li, pi, len) in segments {
                let mut params = layers[li].params_mut();
                let p = &mut *params[pi];
                p.grad.as_mut_slice().copy_from_slice(&data[off..off + len]);
                off += len;
            }
            debug_assert_eq!(off, data.len(), "gradient bucket mis-sized");
        }

        // ---------- Install averaged factors ------------------------------
        if capture {
            if pipelined {
                // The pipelined path consumed the per-layer stats during the
                // passes; drain any leftover capture state.
                let _ = net.take_captures();
            }
            for (members, sizes, handle) in pending.drain(..) {
                let data = handle.wait()?.data;
                let mut off = 0usize;
                for ((pos_or_state, side), sz) in members.into_iter().zip(sizes) {
                    let packed_slice = &data[off..off + sz];
                    off += sz;
                    let (si, dim) = match side {
                        // SPD A-pass positions run front-to-back; G-pass
                        // positions run back-to-front. Bulk-path members
                        // already carry state indices.
                        Side::A => {
                            let si = pos_or_state;
                            (si, dims[si].0)
                        }
                        Side::G => {
                            let si = if pipelined {
                                nlayers - 1 - pos_or_state
                            } else {
                                pos_or_state
                            };
                            (si, dims[si].1)
                        }
                    };
                    let packed = SymPacked::from_vec(dim, packed_slice.to_vec());
                    match side {
                        Side::A => states[si].update_a(packed.to_matrix(), cfg.kfac.stat_decay),
                        Side::G => states[si].update_g(packed.to_matrix(), cfg.kfac.stat_decay),
                    }
                }
            }

            // ---------- Distributed eigendecomposition (EKFAC extension) ---
            if cfg.algorithm == Algorithm::EkfacSpd {
                if iter % cfg.kfac.inv_update_freq.max(1) == 0 {
                    let mine: Vec<usize> = store.current().placement.set_for_gpu(rank);
                    let mut computed: Vec<Option<(Matrix, Vec<f64>)>> = vec![None; 2 * nlayers];
                    for &t in &mine {
                        // One sized span per tensor: the calibrator reads
                        // (dimension, duration) pairs off these.
                        let _inv = obs.sized_span(Phase::InverseComp, inv_dims[t]);
                        let si = t / 2;
                        let factor = if t % 2 == 0 {
                            states[si].factor_a().expect("no A statistics").clone()
                        } else {
                            states[si].factor_g().expect("no G statistics").clone()
                        };
                        let e = sym_eig(&factor).unwrap_or_else(|err| {
                            panic!("rank {rank}: eigendecomposition of tensor {t} failed: {err}")
                        });
                        computed[t] = Some((e.vectors, e.values));
                    }
                    // Broadcast Q‖λ for CT tensors (d² + d elements each).
                    comm.set_phase(Phase::InverseComm);
                    let mut bcasts: Vec<(usize, PendingOp)> = Vec::new();
                    for t in 0..2 * nlayers {
                        if let TensorAssignment::Gpu(owner) =
                            store.current().placement.assignments()[t]
                        {
                            let d = inv_dims[t];
                            let buf = match &computed[t] {
                                Some((q, v)) => {
                                    let mut b = q.as_slice().to_vec();
                                    b.extend_from_slice(v);
                                    b
                                }
                                None => vec![0.0; d * d + d],
                            };
                            bcasts.push((t, comm.broadcast_async(buf, owner)));
                        }
                    }
                    for (t, h) in bcasts {
                        let d = inv_dims[t];
                        let data = h.wait()?.data;
                        let q = Matrix::from_vec(d, d, data[..d * d].to_vec());
                        let v = data[d * d..].to_vec();
                        computed[t] = Some((q, v));
                    }
                    for t in 0..2 * nlayers {
                        ekfac_bases[t] = Some(
                            computed[t]
                                .take()
                                .expect("basis neither computed nor received"),
                        );
                    }
                    // Reseed the eigenbasis scales from the eigenvalue
                    // products (the K-FAC spectrum), to be moment-corrected
                    // by the per-step EMA below.
                    for si in 0..nlayers {
                        let (_, va) = ekfac_bases[2 * si].as_ref().expect("A basis");
                        let (_, vg) = ekfac_bases[2 * si + 1].as_ref().expect("G basis");
                        ekfac_scales[si] = Some(Matrix::from_fn(vg.len(), va.len(), |i, j| {
                            (vg[i] * va[j]).max(0.0)
                        }));
                    }
                }
            } else
            // ---------- Distributed inversion per placement ---------------
            if iter % cfg.kfac.inv_update_freq.max(1) == 0 {
                // Compute this rank's assigned inverses (NCTs + own CTs).
                let mine: Vec<usize> = store.current().placement.set_for_gpu(rank);
                let mut computed: Vec<Option<SymPacked>> = vec![None; 2 * nlayers];
                for &t in &mine {
                    // One sized span per tensor: the calibrator reads
                    // (dimension, duration) pairs off these.
                    let _inv = obs.sized_span(Phase::InverseComp, inv_dims[t]);
                    let si = t / 2;
                    let damped = if t % 2 == 0 {
                        states[si].damped_a(cfg.kfac.damping)
                    } else {
                        states[si].damped_g(cfg.kfac.damping)
                    };
                    let inv = chol::spd_inverse(&damped).unwrap_or_else(|e| {
                        panic!("rank {rank}: inversion of tensor {t} failed: {e}")
                    });
                    computed[t] = Some(SymPacked::from_matrix(&inv));
                }
                // Broadcast CT results (everyone issues in tensor order).
                comm.set_phase(Phase::InverseComm);
                let mut bcasts: Vec<(usize, PendingOp)> = Vec::new();
                for t in 0..2 * nlayers {
                    if let TensorAssignment::Gpu(owner) = store.current().placement.assignments()[t]
                    {
                        let d = inv_dims[t];
                        let buf = match &computed[t] {
                            Some(p) => p.as_slice().to_vec(),
                            None => vec![0.0; d * (d + 1) / 2],
                        };
                        bcasts.push((t, comm.broadcast_async(buf, owner)));
                    }
                }
                for (t, h) in bcasts {
                    let data = h.wait()?.data;
                    computed[t] = Some(SymPacked::from_vec(inv_dims[t], data));
                }
                // Install all inverses.
                for (t, slot) in computed.iter_mut().enumerate() {
                    let si = t / 2;
                    let inv = slot
                        .take()
                        .expect("inverse neither computed nor received")
                        .to_matrix();
                    if t % 2 == 0 {
                        states[si].set_a_inv(inv);
                    } else {
                        states[si].set_g_inv(inv);
                    }
                }
            }
        }

        // ---------- Update -------------------------------------------------
        let update_span = obs.labeled_span(Phase::Update, format!("iter{iter}"));
        if capture {
            let (mut directions, raw) = if cfg.algorithm == Algorithm::EkfacSpd {
                build_ekfac_directions(
                    net,
                    &state_of_layer,
                    ekfac_bases,
                    ekfac_scales,
                    cfg.kfac.stat_decay,
                    cfg.kfac.damping,
                )
            } else {
                build_directions(net, &state_of_layer, states)
            };
            if let Some(clip) = cfg.kfac.kl_clip {
                apply_kl_clip(&mut directions, &raw, cfg.kfac.lr, clip);
            }
            sgd.step_with_directions(&mut net.parameters_mut(), &directions);
        } else {
            sgd.step(&mut net.parameters_mut());
        }
        drop(update_span);

        // ---------- Loss reporting ----------------------------------------
        // Elastic mode piggybacks a resize flag on the loss all-reduce:
        // rank 0 polls the rendezvous for pending joiners and sets element
        // 1, so every rank reaches the same verdict at the same barrier
        // with zero extra collectives. Non-elastic mode keeps the 1-element
        // reduce bit-exactly as before.
        comm.set_phase(Phase::Update);
        let mut resize_requested = false;
        let loss = if let Some(el) = elastic {
            let mut flag = 0.0;
            if rank == 0 && el.poll_every > 0 && (iter + 1) % el.poll_every == 0 {
                if let Ok(status) = elastic_poll(&el.tcp) {
                    if status.pending > 0 {
                        flag = 1.0;
                    }
                }
            }
            let mut loss_buf = [local_loss, flag];
            allreduce_avg_checked(comm, &mut loss_buf)?;
            resize_requested = loss_buf[1] > 0.0;
            loss_buf[0]
        } else {
            let mut loss_buf = [local_loss];
            allreduce_avg_checked(comm, &mut loss_buf)?;
            loss_buf[0]
        };
        losses.push(loss);
        // Flight-recorder iteration boundary: the heartbeat picks up the
        // new (iteration, loss) pair and the bounded window keeps one span
        // per completed iteration on this rank's compute track.
        flight.record_iteration(iter as u64 + 1, loss);
        flight.record_span(
            rank,
            Phase::Update,
            &format!("iter{iter}"),
            flight_iter_start,
            flight.now(),
        );

        // ---------- Agree on SPD fusion plans after the first iteration ----
        // "First" is per segment: fusion plans are derived from measured
        // ready-times under the *current* world size, so each membership
        // epoch re-agrees from its own first iteration.
        if pipelined && iter == seg_start && nlayers > 0 {
            let mut times: Vec<f64> = a_ready.iter().chain(g_ready.iter()).copied().collect();
            allreduce_avg_checked(comm, &mut times)?;
            let (a_avg, g_avg) = times.split_at(nlayers);
            let a_pipe =
                FactorPipeline::new(monotonize(a_avg), a_sizes.clone()).expect("A pipeline valid");
            let rev_g_sizes: Vec<usize> = g_sizes.iter().rev().copied().collect();
            let g_pipe =
                FactorPipeline::new(monotonize(g_avg), rev_g_sizes).expect("G pipeline valid");
            let a = fusion::plan(&a_pipe, &cfg.comm_model, cfg.fusion);
            let g = fusion::plan(&g_pipe, &cfg.comm_model, cfg.fusion);
            // Publish the tensor-fusion verdict (Eq. 15) once, on rank 0:
            // how many factors each pass fused into how many messages.
            if rank == 0 {
                if let Some(r) = &obs.rec {
                    let m = r.metrics();
                    m.gauge("fusion/a/factors").set(nlayers as f64);
                    m.gauge("fusion/a/messages").set(a.num_messages() as f64);
                    m.gauge("fusion/a/merges")
                        .set((nlayers - a.num_messages()) as f64);
                    m.gauge("fusion/g/factors").set(nlayers as f64);
                    m.gauge("fusion/g/messages").set(g.num_messages() as f64);
                    m.gauge("fusion/g/merges")
                        .set((nlayers - g.num_messages()) as f64);
                }
            }
            store.install_fusion(Some(a), Some(g));
            a_pipeline = Some(a_pipe);
            g_pipeline = Some(g_pipe);
        }

        // ---------- Adaptive re-plan barrier (see `crate::runtime`) --------
        // SPMD-safe by construction: entry depends only on `iter`, the
        // models are agreement-all-reduced (doubling as the barrier), and
        // the re-plan + hysteresis are pure functions of rank-identical
        // inputs — so every rank swaps (or doesn't) together.
        if controller.due(iter) {
            let t_barrier = Instant::now();
            let replan_span = obs.span(Phase::Update);
            if let Some(r) = &obs.rec {
                let fresh: Vec<spdkfac_obs::Span> = r
                    .spans()
                    .into_iter()
                    .filter(|s| s.end > ingested_until)
                    .collect();
                ingested_until = r.now();
                calibrator.ingest_spans(&fresh);
            }
            let mut agree = runtime::encode_models(calibrator.refit()).to_vec();
            comm.set_phase(Phase::Update);
            allreduce_avg_checked(comm, &mut agree)?;
            let mut agreed = runtime::decode_models(&agree, &cfg.comp_model, &cfg.comm_model);
            // Plan fusion with the model for what the factor all-reduces
            // actually cost on this wire format: β re-expressed per element
            // through the agreed per-byte line plus the codec line. Under
            // f64 (or before any wire fit exists) this is the identity.
            agreed.allreduce = agreed.effective_allreduce(cfg.wire.factor.bytes_per_elem());
            // The standing placement prices migration: a CT only moves if
            // the rebalancing win exceeds one broadcast of its state.
            let prev = store.current().placement.clone();
            let (placement, a_f, g_f) = runtime::replan(
                &agreed,
                &inv_dims,
                world,
                cfg.effective_placement(),
                Some(&prev),
                a_pipeline.as_ref(),
                g_pipeline.as_ref(),
                cfg.fusion,
            );
            let outcome = controller.consider(&mut store, placement, a_f, g_f);
            if outcome.swapped {
                comm.set_generation(store.generation());
            }
            drop(replan_span);
            if rank == 0 {
                if let Some(r) = &obs.rec {
                    runtime::publish_replan_metrics(
                        r.metrics(),
                        &outcome,
                        t_barrier.elapsed().as_secs_f64(),
                    );
                    calibrator.publish_metrics(r.metrics());
                }
            }
        }

        if rank == 0 {
            if let Some(r) = &obs.rec {
                r.metrics().counter("train/iterations").inc();
            }
        }

        // The iteration is complete on every rank (the loss all-reduce was
        // the barrier); advance the resume point before acting on any
        // membership decision.
        *next_iter = iter + 1;
        if let Some(el) = elastic {
            if el.leave_after.is_some_and(|n| iter + 1 >= n) {
                return Ok(SegmentEnd::Leave);
            }
            if resize_requested && iter + 1 < iters {
                return Ok(SegmentEnd::ResizeRequested);
            }
        }
    }

    Ok(SegmentEnd::Done)
}

/// The elastic driver: joins the rendezvous, hands off / receives state at
/// each membership epoch, and runs segments until the iteration budget is
/// spent (see `TrainSession::elastic`).
///
/// Recovery flow on any segment exit short of `Done`:
/// 1. drop the endpoint (closing ring sockets — peers blocked on a dead
///    rank's collective fail over to the same path),
/// 2. re-dial the rendezvous with `Rejoin { epoch, old_rank }`,
/// 3. on the new epoch, every rank restores from the checkpoint broadcast
///    by the new rank 0 (K-FAC state is replicated, so any survivor is an
///    authoritative source; bit-identical replicas are re-established by
///    construction, which keeps the next epoch SPMD-safe),
/// 4. run the next segment from the checkpoint's iteration.
#[allow(clippy::too_many_arguments)]
fn run_elastic(
    cfg: &DistributedConfig,
    policy: &ElasticPolicy,
    build: &(dyn Fn() -> Sequential + Sync),
    dataset: &Dataset,
    iters: usize,
    batch: usize,
    rec: Option<Arc<Recorder>>,
) -> Result<RunResult, CommError> {
    let flight = spdkfac_obs::flight::global();
    let mut ws: Option<WorkerState> = None;
    let mut membership: Vec<MembershipSpan> = Vec::new();
    let mut traffic_elements = 0u64;
    let mut traffic_wire_bytes = 0u64;
    let mut collective_ops = 0u64;
    let mut intent = JoinIntent::Fresh {
        claim: policy.claim,
    };
    let mut epochs_joined = 0u64;
    loop {
        epochs_joined += 1;
        if epochs_joined > policy.max_epochs {
            return Err(CommError::Rendezvous(format!(
                "elastic run exceeded its budget of {} membership epochs",
                policy.max_epochs
            )));
        }
        let ep = connect_elastic(&policy.tcp, &intent, cfg.wire)?;
        let comm = ep.comm;
        let rank = comm.rank();
        let world = comm.world_size();
        if world < policy.min_world {
            return Err(CommError::Rendezvous(format!(
                "epoch {}: world shrank to {world}, below min_world {}",
                ep.epoch, policy.min_world
            )));
        }
        if let Some(r) = &rec {
            comm.set_recorder(Arc::clone(r), world + rank);
        }
        let obs = WorkerObs {
            rec: rec.clone(),
            track: rank,
        };
        flight.set_member_epoch(ep.epoch);

        let mut state = ws.take().unwrap_or_else(|| WorkerState::fresh(cfg, build));
        // ---------- State handoff -----------------------------------------
        // After any transition with survivors, the new rank 0 broadcasts its
        // full checkpoint (length first — joiners cannot size the payload)
        // and everyone restores from it.
        if ep.epoch > 0 {
            if let Some(src) = ep.state_source {
                let _handoff = obs.labeled_span(Phase::Update, format!("handoff-e{}", ep.epoch));
                comm.set_phase(Phase::Update);
                let packed = if rank == src {
                    state.checkpoint().pack()
                } else {
                    Vec::new()
                };
                let len_buf = vec![packed.len() as f64];
                let len = comm.broadcast_async(len_buf, src).wait()?.data[0] as usize;
                let payload = if rank == src { packed } else { vec![0.0; len] };
                let data = comm.broadcast_async(payload, src).wait()?.data;
                if rank != src {
                    let ckpt = TrainCheckpoint::unpack(&data).map_err(|e| {
                        CommError::Io(format!("epoch {}: state handoff corrupt: {e}", ep.epoch))
                    })?;
                    state.restore(&ckpt);
                }
            }
        }
        membership.push(MembershipSpan {
            epoch: ep.epoch,
            world,
            from_iter: state.next_iter,
        });

        let seg_cfg = SegmentElastic {
            tcp: policy.tcp.clone(),
            poll_every: policy.poll_every,
            leave_after: policy.leave_after,
        };
        let end = train_segment(
            cfg,
            &mut state,
            dataset,
            iters,
            batch,
            &comm,
            &obs,
            Some(&seg_cfg),
        );
        let stats = comm.stats();
        traffic_elements += stats.elements_sent();
        traffic_wire_bytes += stats.wire_bytes_sent();
        collective_ops += stats.ops_executed();
        match end {
            Ok(SegmentEnd::Done) | Ok(SegmentEnd::Leave) => {
                drop(comm);
                return Ok(RunResult {
                    final_params: state.net.flat_params(),
                    losses: state.losses,
                    traffic_elements,
                    traffic_wire_bytes,
                    collective_ops,
                    membership,
                });
            }
            Ok(SegmentEnd::ResizeRequested) => {
                intent = JoinIntent::Rejoin {
                    epoch: ep.epoch,
                    old_rank: rank,
                };
                ws = Some(state);
                drop(comm);
            }
            Err(e) => {
                eprintln!(
                    "[spdkfac] epoch {} rank {rank}: peer failure ({e}); rejoining rendezvous",
                    ep.epoch
                );
                intent = JoinIntent::Rejoin {
                    epoch: ep.epoch,
                    old_rank: rank,
                };
                ws = Some(state);
                drop(comm);
            }
        }
    }
}

/// Builds EKFAC update directions: every preconditioned layer's gradient is
/// projected into its Kronecker eigenbasis, the basis second moments are
/// EMA-updated with the squared projection, and the rescaled projection is
/// mapped back (see [`crate::ekfac`]). Biases use row-mean denominators.
fn build_ekfac_directions(
    net: &Sequential,
    state_of_layer: &[Option<usize>],
    bases: &[Option<(Matrix, Vec<f64>)>],
    scales: &mut [Option<Matrix>],
    stat_decay: f64,
    damping: f64,
) -> (Vec<Matrix>, Vec<Matrix>) {
    let mut directions = Vec::new();
    let mut raw = Vec::new();
    for (li, layer) in net.layers().iter().enumerate() {
        let params = layer.params();
        match state_of_layer.get(li).copied().flatten() {
            Some(si) if scales[si].is_some() => {
                let (q_a, _) = bases[2 * si].as_ref().expect("A basis");
                let (q_g, _) = bases[2 * si + 1].as_ref().expect("G basis");
                // Moment-correct the scales with this step's weight gradient.
                let grad_w = &params[0].grad;
                let projected = q_g.matmul_tn(grad_w).matmul(q_a);
                let sq = Matrix::from_fn(projected.rows(), projected.cols(), |i, j| {
                    projected[(i, j)] * projected[(i, j)]
                });
                let scale = scales[si].as_mut().expect("scale");
                scale.ema_update(stat_decay, &sq);
                let scale = scales[si].as_ref().expect("scale");
                for (pi, p) in params.iter().enumerate() {
                    raw.push(p.grad.clone());
                    if pi == 0 {
                        directions.push(precondition_ekfac(&p.grad, q_a, q_g, scale, damping));
                    } else {
                        let proj = q_g.matmul_tn(&p.grad);
                        let cols = scale.cols() as f64;
                        let rescaled = Matrix::from_fn(proj.rows(), 1, |i, _| {
                            let row_mean: f64 = scale.row(i).iter().sum::<f64>() / cols;
                            proj[(i, 0)] / (row_mean + damping)
                        });
                        directions.push(q_g.matmul(&rescaled));
                    }
                }
            }
            _ => {
                for p in params {
                    raw.push(p.grad.clone());
                    directions.push(p.grad.clone());
                }
            }
        }
    }
    (directions, raw)
}

/// Clamps a measured time series to be non-decreasing (averaging across
/// ranks can introduce tiny inversions).
fn monotonize(ts: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(ts.len());
    let mut cur = f64::NEG_INFINITY;
    for &t in ts {
        cur = cur.max(t);
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_nn::data::gaussian_blobs;
    use spdkfac_nn::models::{deep_mlp, mlp};

    fn run(algorithm: Algorithm, world: usize, iters: usize) -> RunResult {
        let mut cfg = DistributedConfig::new(world, algorithm);
        cfg.kfac.damping = 0.1;
        cfg.kfac.lr = 0.05;
        cfg.kfac.momentum = 0.0;
        let data = gaussian_blobs(3, 6, 8 * world.max(2), 0.3, 17);
        TrainSession::builder(cfg)
            .run(&|| mlp(&[6, 12, 3], 3), &data, iters, 4)
            .expect("local run")
    }

    #[test]
    fn ssgd_trains_and_syncs() {
        let r = run(Algorithm::SSgd, 3, 10);
        assert_eq!(r.losses.len(), 10);
        assert!(r.losses.last().unwrap() < &r.losses[0]);
        assert!(r.traffic_elements > 0);
        // Non-elastic runs report a single epoch-0 membership span.
        assert_eq!(
            r.membership,
            vec![MembershipSpan {
                epoch: 0,
                world: 3,
                from_iter: 0
            }]
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_train_session() {
        // The legacy entry points are thin wrappers over the same impl and
        // must stay bit-identical until removed.
        let mut cfg = DistributedConfig::new(2, Algorithm::DKfac);
        cfg.kfac.damping = 0.1;
        cfg.kfac.momentum = 0.0;
        let data = gaussian_blobs(3, 6, 16, 0.3, 17);
        let build = || mlp(&[6, 12, 3], 3);
        let old = train(&cfg, &build, &data, 4, 4);
        let new = TrainSession::builder(cfg)
            .run(&build, &data, 4, 4)
            .expect("local run");
        assert_eq!(old.final_params, new.final_params);
        assert_eq!(old.losses, new.losses);
    }

    #[test]
    fn dkfac_trains() {
        let r = run(Algorithm::DKfac, 2, 8);
        assert!(r.losses.last().unwrap() < &r.losses[0]);
    }

    #[test]
    fn all_kfac_variants_agree_numerically() {
        let d = run(Algorithm::DKfac, 2, 6);
        let m = run(Algorithm::MpdKfac, 2, 6);
        let s = run(Algorithm::SpdKfac, 2, 6);
        let max_dm = max_diff(&d.final_params, &m.final_params);
        let max_ds = max_diff(&d.final_params, &s.final_params);
        assert!(max_dm < 1e-8, "D vs MPD diverged: {max_dm}");
        assert!(max_ds < 1e-8, "D vs SPD diverged: {max_ds}");
    }

    #[test]
    fn world_one_matches_multi_world_shapes() {
        let r = run(Algorithm::SpdKfac, 1, 4);
        assert_eq!(r.losses.len(), 4);
    }

    #[test]
    fn spd_runs_deep_models_with_fusion() {
        let mut cfg = DistributedConfig::new(2, Algorithm::SpdKfac);
        cfg.kfac.damping = 0.2;
        cfg.kfac.momentum = 0.0;
        let data = gaussian_blobs(3, 8, 24, 0.3, 21);
        let r = TrainSession::builder(cfg)
            .run(&|| deep_mlp(8, 10, 6, 3, 5), &data, 5, 4)
            .expect("local run");
        assert_eq!(r.losses.len(), 5);
        assert!(r.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn distributed_ekfac_trains_and_syncs() {
        let r = run(Algorithm::EkfacSpd, 2, 8);
        assert!(r.losses.iter().all(|l| l.is_finite()));
        assert!(r.losses.last().unwrap() < &r.losses[0], "{:?}", r.losses);
    }

    #[test]
    fn distributed_ekfac_matches_single_process_ekfac() {
        use crate::ekfac::{EkfacConfig, EkfacOptimizer};
        use spdkfac_nn::loss::softmax_cross_entropy;

        let data = gaussian_blobs(3, 6, 24, 0.3, 83);
        let iters = 5;
        let batch = 6;
        let build = || mlp(&[6, 10, 3], 4);

        let mut cfg = DistributedConfig::new(1, Algorithm::EkfacSpd);
        cfg.kfac.damping = 0.1;
        cfg.kfac.lr = 0.05;
        cfg.kfac.momentum = 0.0;
        let dist = TrainSession::builder(cfg)
            .run(&build, &data, iters, batch)
            .expect("local run");

        let mut net = build();
        let mut opt = EkfacOptimizer::new(
            &net,
            EkfacConfig {
                lr: 0.05,
                momentum: 0.0,
                damping: 0.1,
                ..EkfacConfig::default()
            },
        );
        for i in 0..iters {
            let start = (i * batch) % (data.len() - batch + 1);
            let (x, y) = data.batch(start, batch);
            let out = net.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            opt.step(&mut net).expect("ekfac step");
        }
        let d = max_diff(&dist.final_params, &net.flat_params());
        assert!(
            d < 1e-9,
            "distributed EKFAC diverged from single-process: {d}"
        );
    }

    #[test]
    fn wfbp_bucketing_does_not_change_numerics() {
        // Tiny fusion buffers produce many gradient buckets; results must
        // match the single-bucket configuration to fp-reorder noise.
        let data = gaussian_blobs(3, 6, 16, 0.3, 71);
        let build = || mlp(&[6, 12, 3], 3);
        let mut big = DistributedConfig::new(2, Algorithm::DKfac);
        big.kfac.damping = 0.1;
        big.kfac.momentum = 0.0;
        let mut small = big.clone();
        small.grad_fusion_elems = 8; // flush almost every layer
        let r_big = TrainSession::builder(big)
            .run(&build, &data, 5, 4)
            .expect("local run");
        let r_small = TrainSession::builder(small)
            .run(&build, &data, 5, 4)
            .expect("local run");
        assert!(
            max_diff(&r_big.final_params, &r_small.final_params) < 1e-9,
            "bucketing changed results"
        );
        // The small-bucket run issues more collectives.
        assert!(r_small.collective_ops > r_big.collective_ops);
    }

    #[test]
    fn mpd_uses_fewer_or_equal_ops_than_spd_broadcasts() {
        // Smoke check on the traffic counters: MPD broadcasts every tensor,
        // SPD's LBP keeps small tensors local, so SPD executes no more
        // collective ops per iteration than MPD.
        let m = run(Algorithm::MpdKfac, 2, 3);
        let s = run(Algorithm::SpdKfac, 2, 3);
        assert!(
            s.collective_ops <= m.collective_ops + 6, // SPD adds plan agreement + bucket ops
            "spd={} mpd={}",
            s.collective_ops,
            m.collective_ops
        );
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Runs SPD-KFAC under `wire` and returns the result, on a fixed
    /// data/model so runs under different policies are comparable.
    fn run_with_wire(wire: &str, iters: usize) -> RunResult {
        let mut cfg = DistributedConfig::new(2, Algorithm::SpdKfac);
        cfg.kfac.damping = 0.1;
        cfg.kfac.lr = 0.05;
        cfg.kfac.momentum = 0.0;
        cfg.wire = WirePolicy::parse(wire).expect("wire policy");
        let data = gaussian_blobs(3, 6, 16, 0.3, 17);
        TrainSession::builder(cfg)
            .run(&|| mlp(&[6, 12, 3], 3), &data, iters, 4)
            .expect("local run")
    }

    #[test]
    fn f16_wire_converges_within_bounded_loss_divergence() {
        // The tentpole numerical claim: compressing gradient + factor
        // all-reduces to f16 must not change the training trajectory beyond
        // a documented bound. Per-iteration loss divergence vs the f64
        // baseline stays under 2e-2 absolute (f16 has ~3 decimal digits;
        // losses here are O(1)), and the run still converges.
        let iters = 8;
        let exact = run_with_wire("f64", iters);
        let lossy = run_with_wire("grad=f16,factor=f16", iters);
        assert!(lossy.losses.last().unwrap() < &lossy.losses[0]);
        for (i, (a, b)) in exact.losses.iter().zip(&lossy.losses).enumerate() {
            assert!(
                (a - b).abs() < 2e-2,
                "iter {i}: f64 loss {a} vs f16 loss {b}"
            );
        }
        // Wire accounting: the f64 run moves 8 B/element; the lossy run
        // strictly fewer (control traffic stays f64, so not a flat 4x).
        assert_eq!(exact.traffic_wire_bytes, exact.traffic_elements * 8);
        assert!(lossy.traffic_wire_bytes < exact.traffic_wire_bytes);
    }

    #[test]
    fn topk_gradient_wire_still_converges() {
        // Residual-compensated top-k on gradients: sparsification error is
        // fed back, so training still converges (on a looser bound — top-k
        // changes the trajectory more than rounding does).
        let iters = 10;
        let lossy = run_with_wire("grad=topk:0.25", iters);
        assert!(lossy.losses.iter().all(|l| l.is_finite()));
        assert!(
            lossy.losses.last().unwrap() < &lossy.losses[0],
            "{:?}",
            lossy.losses
        );
    }

    #[test]
    fn recorder_captures_trainer_phases_and_metrics() {
        let world = 2;
        let iters = 4;
        let rec = Arc::new(Recorder::new(2 * world));
        let mut cfg = DistributedConfig::new(world, Algorithm::SpdKfac);
        cfg.kfac.damping = 0.1;
        cfg.kfac.lr = 0.05;
        cfg.kfac.momentum = 0.0;
        let data = gaussian_blobs(3, 6, 16, 0.3, 17);
        let r = TrainSession::builder(cfg)
            .recorder(Arc::clone(&rec))
            .run(&|| mlp(&[6, 12, 3], 3), &data, iters, 4)
            .expect("local run");
        assert_eq!(r.losses.len(), iters);

        let spans = rec.spans();
        // Compute phases land on the rank tracks (0..world)…
        for ph in [
            Phase::FfBp,
            Phase::FactorComp,
            Phase::InverseComp,
            Phase::Update,
        ] {
            assert!(
                spans.iter().any(|s| s.phase == ph && s.track < world),
                "missing compute phase {ph}"
            );
        }
        // …and collectives on the comm tracks (world..2*world), tagged with
        // the phase current at submission time.
        for ph in [Phase::FactorComm, Phase::GradComm] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.phase == ph && (world..2 * world).contains(&s.track)),
                "missing comm phase {ph}"
            );
        }

        let snap = rec.metrics().snapshot();
        assert_eq!(snap.counters["train/iterations"], iters as u64);
        assert!(snap.gauges.contains_key("placement/gpu0/load"));
        assert!(snap.gauges.contains_key("placement/gpu1/load"));
        assert!(snap.gauges["placement/nct"] + snap.gauges["placement/ct"] > 0.0);
        assert!(snap.gauges["fusion/a/messages"] >= 1.0);
        assert!(snap.gauges["fusion/g/messages"] >= 1.0);
        // Realized flush telemetry: every iteration flushes at least one
        // fused A and one fused G message, and the realized bytes match the
        // per-flush histogram count.
        assert!(snap.counters["fusion/a/flushes"] >= iters as u64);
        assert!(snap.counters["fusion/g/flushes"] >= iters as u64);
        assert!(snap.counters["fusion/a/realized_elems"] > 0);
        assert!(snap.counters["fusion/g/realized_elems"] > 0);
        assert_eq!(
            snap.histograms["fusion/realized/elems"].count,
            snap.counters["fusion/a/flushes"] + snap.counters["fusion/g/flushes"]
        );
        // Per-tensor inversion spans carry their dimension for calibration.
        assert!(spans
            .iter()
            .any(|s| s.phase == Phase::InverseComp && s.meta.size.is_some()));

        // The measured breakdown is the simulator's type and accounts for
        // the whole recorded interval.
        let b = spdkfac_obs::IterationBreakdown::from_recorder(&rec, world);
        assert!(b.total() > 0.0);
        assert!(b.ff_bp > 0.0);
    }

    #[test]
    fn mpd_broadcasts_are_tagged_inverse_comm() {
        // MPD-KFAC (SeqDist) makes every tensor a CT, so inverse-result
        // broadcasts must appear on the comm tracks as InverseComm.
        let world = 2;
        let rec = Arc::new(Recorder::new(2 * world));
        let mut cfg = DistributedConfig::new(world, Algorithm::MpdKfac);
        cfg.kfac.damping = 0.1;
        cfg.kfac.momentum = 0.0;
        let data = gaussian_blobs(3, 6, 16, 0.3, 17);
        let _ = TrainSession::builder(cfg)
            .recorder(Arc::clone(&rec))
            .run(&|| mlp(&[6, 12, 3], 3), &data, 2, 4)
            .expect("local run");
        assert!(rec
            .spans()
            .iter()
            .any(|s| s.phase == Phase::InverseComm && s.track >= world));
    }
}
