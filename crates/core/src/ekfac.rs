//! EKFAC — the eigenvalue-corrected K-FAC variant (George et al., NeurIPS
//! 2018; reference \[12\] of the paper's related work).
//!
//! Where K-FAC preconditions with `(A+γI)⁻¹ ⊗ (G+γI)⁻¹`, EKFAC keeps the
//! Kronecker *eigenbasis* `Q_A ⊗ Q_G` but replaces the eigenvalue products
//! with directly-estimated second moments of the gradient in that basis:
//!
//! 1. eigendecompose `A = Q_A Λ_A Q_Aᵀ`, `G = Q_G Λ_G Q_Gᵀ` (amortised);
//! 2. track `S ← ρ·S + (1−ρ)·(Q_Gᵀ ∇W Q_A)²` element-wise every step;
//! 3. precondition `∇̃W = Q_G [ (Q_Gᵀ ∇W Q_A) ⊘ (S + γ) ] Q_Aᵀ`.
//!
//! Systems-wise, EKFAC swaps the 2L inversions for 2L eigendecompositions
//! (same distribution/broadcast structure — LBP applies unchanged) plus a
//! cheap per-step rescale, which is why it slots into this reproduction as a
//! natural extension.

use crate::error::{FactorSide, KfacError};
use spdkfac_nn::optim::Sgd;
use spdkfac_nn::Sequential;
use spdkfac_tensor::eig::sym_eig;
use spdkfac_tensor::Matrix;

/// Hyper-parameters of the EKFAC update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EkfacConfig {
    /// Learning rate.
    pub lr: f64,
    /// Momentum.
    pub momentum: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Damping added to the scaling denominators.
    pub damping: f64,
    /// EMA decay of factor statistics and of the eigenbasis second moments.
    pub stat_decay: f64,
    /// Recompute the eigenbases every this many steps.
    pub basis_update_freq: usize,
}

impl Default for EkfacConfig {
    fn default() -> Self {
        EkfacConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
            damping: 0.03,
            stat_decay: 0.95,
            basis_update_freq: 1,
        }
    }
}

#[derive(Debug)]
struct EkfacLayerState {
    layer: usize,
    a: Option<Matrix>,
    g: Option<Matrix>,
    q_a: Option<Matrix>,
    q_g: Option<Matrix>,
    /// Second moments of the gradient in the eigenbasis, `d_g × d_a`.
    scale: Option<Matrix>,
}

/// Preconditions a gradient in a fixed Kronecker eigenbasis:
/// `Q_G [ (Q_Gᵀ ∇W Q_A) ⊘ (S + γ) ] Q_Aᵀ`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn precondition_ekfac(
    grad: &Matrix,
    q_a: &Matrix,
    q_g: &Matrix,
    scale: &Matrix,
    damping: f64,
) -> Matrix {
    let projected = q_g.matmul_tn(grad).matmul(q_a);
    assert_eq!(
        projected.shape(),
        scale.shape(),
        "ekfac: scale shape mismatch"
    );
    let rescaled = Matrix::from_fn(projected.rows(), projected.cols(), |i, j| {
        projected[(i, j)] / (scale[(i, j)] + damping)
    });
    q_g.matmul(&rescaled).matmul_nt(q_a)
}

/// Single-process EKFAC optimizer (extension; mirrors
/// [`crate::optimizer::KfacOptimizer`]).
#[derive(Debug)]
pub struct EkfacOptimizer {
    cfg: EkfacConfig,
    states: Vec<EkfacLayerState>,
    state_of_layer: Vec<Option<usize>>,
    sgd: Sgd,
    steps: usize,
}

impl EkfacOptimizer {
    /// Creates an optimizer for `net`.
    pub fn new(net: &Sequential, cfg: EkfacConfig) -> Self {
        let pre = net.preconditionable();
        let mut state_of_layer = vec![None; net.len()];
        let mut states = Vec::with_capacity(pre.len());
        for (si, &li) in pre.iter().enumerate() {
            state_of_layer[li] = Some(si);
            states.push(EkfacLayerState {
                layer: li,
                a: None,
                g: None,
                q_a: None,
                q_g: None,
                scale: None,
            });
        }
        EkfacOptimizer {
            sgd: Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay),
            cfg,
            states,
            state_of_layer,
            steps: 0,
        }
    }

    /// Number of preconditioned layers.
    pub fn num_preconditioned_layers(&self) -> usize {
        self.states.len()
    }

    /// Consumes captures, refreshes eigenbases on schedule, updates the
    /// eigenbasis second moments, and applies the preconditioned update.
    ///
    /// # Errors
    ///
    /// Returns [`KfacError::FactorInversion`] when an eigendecomposition
    /// fails (rectangular input cannot occur here; the error is kept for
    /// interface symmetry with K-FAC).
    pub fn step(&mut self, net: &mut Sequential) -> Result<(), KfacError> {
        // 1. Update running factors from captures.
        for (layer, cap) in net.take_captures() {
            let si = self.state_of_layer[layer].expect("capture from unknown layer");
            let st = &mut self.states[si];
            let a_new = cap.factor_a();
            let g_new = cap.factor_g();
            match &mut st.a {
                Some(a) => a.ema_update(self.cfg.stat_decay, &a_new),
                None => st.a = Some(a_new),
            }
            match &mut st.g {
                Some(g) => g.ema_update(self.cfg.stat_decay, &g_new),
                None => st.g = Some(g_new),
            }
        }
        // 2. Refresh eigenbases on schedule.
        if self.steps.is_multiple_of(self.cfg.basis_update_freq.max(1)) {
            for st in &mut self.states {
                let a = st.a.as_ref().expect("no A statistics yet");
                let g = st.g.as_ref().expect("no G statistics yet");
                let ea = sym_eig(a).map_err(|source| KfacError::FactorInversion {
                    layer: st.layer,
                    factor: FactorSide::A,
                    source,
                })?;
                let eg = sym_eig(g).map_err(|source| KfacError::FactorInversion {
                    layer: st.layer,
                    factor: FactorSide::G,
                    source,
                })?;
                st.q_a = Some(ea.vectors);
                st.q_g = Some(eg.vectors);
                // (Re)seed the scales with the Kronecker eigenvalue products
                // (exactly K-FAC's spectrum) — the per-step moment tracking
                // below corrects them, which is EKFAC's whole point.
                let seed = Matrix::from_fn(eg.values.len(), ea.values.len(), |i, j| {
                    (eg.values[i] * ea.values[j]).max(0.0)
                });
                if st.scale.is_none() {
                    st.scale = Some(seed);
                } else {
                    st.scale = Some(seed); // refreshed basis invalidates old moments
                }
            }
        }
        // 3. Per-step eigenbasis second-moment update from the current
        //    gradients, then build directions.
        let mut directions: Vec<Matrix> = Vec::new();
        for (li, layer) in net.layers().iter().enumerate() {
            let params = layer.params();
            match self.state_of_layer[li] {
                Some(si) if self.states[si].q_a.is_some() => {
                    // Update scale from the weight gradient.
                    let (q_a, q_g) = {
                        let st = &self.states[si];
                        (
                            st.q_a.as_ref().expect("basis").clone(),
                            st.q_g.as_ref().expect("basis").clone(),
                        )
                    };
                    let grad_w = &params[0].grad;
                    let projected = q_g.matmul_tn(grad_w).matmul(&q_a);
                    {
                        let st = &mut self.states[si];
                        let sq = Matrix::from_fn(projected.rows(), projected.cols(), |i, j| {
                            projected[(i, j)] * projected[(i, j)]
                        });
                        match &mut st.scale {
                            Some(s) => s.ema_update(self.cfg.stat_decay, &sq),
                            None => st.scale = Some(sq),
                        }
                    }
                    let st = &self.states[si];
                    for (pi, p) in params.iter().enumerate() {
                        if pi == 0 {
                            directions.push(precondition_ekfac(
                                &p.grad,
                                &q_a,
                                &q_g,
                                st.scale.as_ref().expect("scale"),
                                self.cfg.damping,
                            ));
                        } else {
                            // Bias: G-side basis only, with row-mean scales.
                            let proj = q_g.matmul_tn(&p.grad);
                            let scale = st.scale.as_ref().expect("scale");
                            let cols = scale.cols() as f64;
                            let rescaled = Matrix::from_fn(proj.rows(), 1, |i, _| {
                                let row_mean: f64 = scale.row(i).iter().sum::<f64>() / cols;
                                proj[(i, 0)] / (row_mean + self.cfg.damping)
                            });
                            directions.push(q_g.matmul(&rescaled));
                        }
                    }
                }
                _ => {
                    for p in params {
                        directions.push(p.grad.clone());
                    }
                }
            }
        }
        self.sgd
            .step_with_directions(&mut net.parameters_mut(), &directions);
        self.steps += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorState;
    use spdkfac_nn::data::{gaussian_blobs, ill_conditioned_blobs};
    use spdkfac_nn::loss::softmax_cross_entropy;
    use spdkfac_nn::models::mlp;
    use spdkfac_tensor::rng::MatrixRng;

    #[test]
    fn ekfac_equals_kfac_when_scales_are_eigenvalue_products() {
        // With S_ij = λ_G,i · λ_A,j and zero damping, the EKFAC rescale is
        // exactly the K-FAC inverse: Q (Λ_A ⊗ Λ_G)⁻¹ Qᵀ = A⁻¹ ⊗ G⁻¹.
        let mut rng = MatrixRng::new(3);
        let a = rng.spd_matrix(4, 0.5);
        let g = rng.spd_matrix(3, 0.5);
        let grad = rng.gaussian_matrix(3, 4);

        let ea = sym_eig(&a).unwrap();
        let eg = sym_eig(&g).unwrap();
        let scale = Matrix::from_fn(3, 4, |i, j| eg.values[i] * ea.values[j]);
        let ek = precondition_ekfac(&grad, &ea.vectors, &eg.vectors, &scale, 0.0);

        let mut st = FactorState::new(0);
        st.update_factors(a.clone(), g.clone(), 0.95);
        st.refresh_inverses(0.0).unwrap();
        let kf = crate::precond::precondition_weight(&st, &grad);
        assert!(
            ek.max_abs_diff(&kf) < 1e-8,
            "EKFAC with spectral scales must equal K-FAC"
        );
    }

    #[test]
    fn identity_basis_and_unit_scale_is_identity() {
        let grad = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let q = Matrix::identity(2);
        let s = Matrix::from_fn(2, 2, |_, _| 1.0);
        let out = precondition_ekfac(&grad, &q, &q, &s, 0.0);
        assert!(out.max_abs_diff(&grad) < 1e-14);
    }

    #[test]
    fn ekfac_trains() {
        let data = gaussian_blobs(3, 6, 20, 0.3, 61);
        let (x, y) = data.batch(0, data.len());
        let mut net = mlp(&[6, 16, 3], 5);
        let mut opt = EkfacOptimizer::new(
            &net,
            EkfacConfig {
                lr: 0.05,
                momentum: 0.0,
                damping: 0.1,
                ..EkfacConfig::default()
            },
        );
        assert_eq!(opt.num_preconditioned_layers(), 2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let out = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            opt.step(&mut net).unwrap();
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < 0.3 * first.unwrap(), "{first:?} -> {last}");
    }

    #[test]
    fn ekfac_beats_sgd_on_ill_conditioned_problem() {
        let data = ill_conditioned_blobs(3, 8, 30, 0.3, 100.0, 11);
        let (x, y) = data.batch(0, data.len());
        let iters = 60;
        let mut net = mlp(&[8, 32, 3], 5);
        let mut opt = EkfacOptimizer::new(
            &net,
            EkfacConfig {
                lr: 0.1,
                momentum: 0.0,
                damping: 0.03,
                ..EkfacConfig::default()
            },
        );
        let mut last = f64::INFINITY;
        for _ in 0..iters {
            let out = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            opt.step(&mut net).unwrap();
            last = loss;
        }
        // Best SGD on this problem/budget reaches ≈3e-3 (see optimizer.rs);
        // EKFAC should be comfortably below.
        assert!(last < 2e-3, "ekfac loss {last} not competitive");
    }

    #[test]
    fn basis_update_freq_amortises() {
        let data = gaussian_blobs(2, 4, 10, 0.3, 63);
        let (x, y) = data.batch(0, 20);
        let mut net = mlp(&[4, 8, 2], 2);
        let mut opt = EkfacOptimizer::new(
            &net,
            EkfacConfig {
                basis_update_freq: 5,
                damping: 0.1,
                momentum: 0.0,
                ..EkfacConfig::default()
            },
        );
        for _ in 0..7 {
            let out = net.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            opt.step(&mut net).unwrap();
        }
        assert_eq!(opt.steps, 7);
    }
}
