//! The paper's performance models and their fitters.
//!
//! - [`AlphaBetaModel`]: `t_c(m) = α + β·m` — the all-reduce model of
//!   Eq. 14 and the broadcast model of Eq. 27 (with `m = d(d+1)/2`).
//! - [`ExpInverseModel`]: `t_comp(d) = α_inv · e^{β_inv · d}` — the matrix
//!   inversion cost model of Eq. 26.
//!
//! Both models expose `fit` constructors implementing the one-time
//! benchmarking methodology of §V-B / Fig. 7 / Fig. 8: ordinary least
//! squares for the linear model, log-space least squares for the
//! exponential.

/// Linear latency–bandwidth cost model `t(m) = α + β·m` (seconds; `m` in
/// elements).
///
/// # Example
///
/// ```
/// use spdkfac_core::perf::AlphaBetaModel;
///
/// let m = AlphaBetaModel::new(50e-6, 1e-9);
/// assert!((m.time(1_000_000) - 1.05e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBetaModel {
    /// Startup latency α (seconds).
    pub alpha: f64,
    /// Per-element cost β (seconds/element).
    pub beta: f64,
}

impl AlphaBetaModel {
    /// Creates a model from its two parameters.
    pub fn new(alpha: f64, beta: f64) -> Self {
        AlphaBetaModel { alpha, beta }
    }

    /// Predicted time for a message of `elems` elements.
    pub fn time(&self, elems: usize) -> f64 {
        self.alpha + self.beta * elems as f64
    }

    /// Predicted time for broadcasting a packed symmetric `d × d` matrix
    /// (`m = d(d+1)/2`, Eq. 27).
    pub fn time_packed(&self, d: usize) -> f64 {
        self.time(d * (d + 1) / 2)
    }

    /// Ordinary least-squares fit to `(elements, seconds)` samples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct sample sizes are given.
    pub fn fit(samples: &[(usize, f64)]) -> Self {
        assert!(samples.len() >= 2, "AlphaBetaModel::fit needs ≥ 2 samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|&(m, _)| m as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, t)| t).sum();
        let sxx: f64 = samples.iter().map(|&(m, _)| (m as f64) * (m as f64)).sum();
        let sxy: f64 = samples.iter().map(|&(m, t)| m as f64 * t).sum();
        let denom = n * sxx - sx * sx;
        assert!(denom.abs() > 0.0, "AlphaBetaModel::fit: degenerate samples");
        let beta = (n * sxy - sx * sy) / denom;
        let alpha = (sy - beta * sx) / n;
        AlphaBetaModel { alpha, beta }
    }

    /// Coefficient of determination (R²) of this model on `samples`.
    pub fn r_squared(&self, samples: &[(usize, f64)]) -> f64 {
        let mean: f64 = samples.iter().map(|&(_, t)| t).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|&(_, t)| (t - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|&(m, t)| (t - self.time(m)).powi(2))
            .sum();
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

/// Exponential inversion-cost model `t(d) = α · e^{β·d}` (Eq. 26).
///
/// # Example
///
/// ```
/// use spdkfac_core::perf::ExpInverseModel;
///
/// let m = ExpInverseModel::new(1e-4, 5e-4);
/// assert!(m.time(2048) > m.time(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpInverseModel {
    /// Scale α_inv (seconds).
    pub alpha: f64,
    /// Exponent rate β_inv (1/dimension).
    pub beta: f64,
}

impl ExpInverseModel {
    /// Creates a model from its two parameters.
    pub fn new(alpha: f64, beta: f64) -> Self {
        ExpInverseModel { alpha, beta }
    }

    /// Predicted inversion time for a `d × d` matrix.
    pub fn time(&self, d: usize) -> f64 {
        self.alpha * (self.beta * d as f64).exp()
    }

    /// Log-space least-squares fit to `(dimension, seconds)` samples
    /// (the Fig. 8 methodology).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct dimensions are given or any time is
    /// non-positive.
    pub fn fit(samples: &[(usize, f64)]) -> Self {
        assert!(samples.len() >= 2, "ExpInverseModel::fit needs ≥ 2 samples");
        // ln t = ln α + β d: linear regression of ln t on d.
        let n = samples.len() as f64;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(d, t) in samples {
            assert!(t > 0.0, "ExpInverseModel::fit: non-positive time sample");
            let x = d as f64;
            let y = t.ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        assert!(
            denom.abs() > 0.0,
            "ExpInverseModel::fit: degenerate samples"
        );
        let beta = (n * sxy - sx * sy) / denom;
        let alpha = ((sy - beta * sx) / n).exp();
        ExpInverseModel { alpha, beta }
    }

    /// R² of the fit in log space.
    pub fn log_r_squared(&self, samples: &[(usize, f64)]) -> f64 {
        let mean: f64 = samples.iter().map(|&(_, t)| t.ln()).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|&(_, t)| (t.ln() - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|&(d, t)| (t.ln() - self.time(d).ln()).powi(2))
            .sum();
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    }

    /// Dimension below which inversion is cheaper than the modelled
    /// communication `comm.time_packed(d)` — the NCT threshold visualised in
    /// Fig. 11. Returns `None` if computation is never cheaper in `1..=max_d`.
    pub fn nct_threshold(&self, comm: &AlphaBetaModel, max_d: usize) -> Option<usize> {
        // t_comp is increasing; find the largest d where t_comp(d) < t_comm(d).
        let mut best = None;
        for d in 1..=max_d {
            if self.time(d) < comm.time_packed(d) {
                best = Some(d);
            }
        }
        best
    }
}

/// Cubic inversion-cost model `t(d) = c·d³ + overhead` — the asymptotically
/// correct alternative to Eq. 26's exponential (Cholesky inversion is
/// Θ(d³)). Provided as an extension: the paper's exponential fit matches its
/// measured range (Fig. 8) but extrapolates badly beyond it (e.g. VGG-16's
/// 25088-dim fc factor), where the cubic form stays sane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicCostModel {
    /// Seconds per `d³` unit.
    pub coeff: f64,
    /// Fixed per-operation overhead (seconds).
    pub overhead: f64,
}

impl CubicCostModel {
    /// Creates a model from its parameters.
    pub fn new(coeff: f64, overhead: f64) -> Self {
        CubicCostModel { coeff, overhead }
    }

    /// Predicted time for a `d × d` inversion.
    pub fn time(&self, d: usize) -> f64 {
        self.overhead + self.coeff * (d as f64).powi(3)
    }

    /// Least-squares fit on `(dimension, seconds)` samples — a linear
    /// regression of `t` on `d³`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two distinct dimensions are given.
    pub fn fit(samples: &[(usize, f64)]) -> Self {
        let cubed: Vec<(usize, f64)> = samples.iter().map(|&(d, t)| (d * d * d, t)).collect();
        let line = AlphaBetaModel::fit(&cubed);
        CubicCostModel {
            coeff: line.beta,
            overhead: line.alpha,
        }
    }

    /// R² of the fit.
    pub fn r_squared(&self, samples: &[(usize, f64)]) -> f64 {
        AlphaBetaModel::new(self.overhead, self.coeff).r_squared(
            &samples
                .iter()
                .map(|&(d, t)| (d * d * d, t))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_fit_recovers_exact_curve() {
        let truth = CubicCostModel::new(2e-12, 5e-4);
        let samples: Vec<(usize, f64)> = [64usize, 128, 256, 512, 1024, 2048]
            .iter()
            .map(|&d| (d, truth.time(d)))
            .collect();
        let fit = CubicCostModel::fit(&samples);
        assert!((fit.coeff - truth.coeff).abs() / truth.coeff < 1e-9);
        assert!((fit.overhead - truth.overhead).abs() < 1e-12);
        assert!(fit.r_squared(&samples) > 0.999999);
    }

    #[test]
    fn cubic_extrapolates_sanely_where_exponential_explodes() {
        // Fit both forms on cubic ground truth over the paper's Fig. 8 range,
        // then extrapolate to VGG-16's 25088-dim fc factor.
        let truth = CubicCostModel::new(3e-12, 1e-3);
        let samples: Vec<(usize, f64)> = [64usize, 256, 1024, 2048, 4096, 8192]
            .iter()
            .map(|&d| (d, truth.time(d)))
            .collect();
        let cubic = CubicCostModel::fit(&samples);
        let expo = ExpInverseModel::fit(&samples);
        let d = 25_088;
        let true_t = truth.time(d);
        assert!((cubic.time(d) - true_t).abs() / true_t < 0.01);
        assert!(
            expo.time(d) > 100.0 * true_t,
            "exponential should wildly over-extrapolate: {:.3e} vs {true_t:.3e}",
            expo.time(d)
        );
    }

    #[test]
    fn alpha_beta_fit_recovers_exact_line() {
        let truth = AlphaBetaModel::new(2e-4, 3e-9);
        let samples: Vec<(usize, f64)> = (1..10)
            .map(|i| {
                let m = i * 1_000_000;
                (m, truth.time(m))
            })
            .collect();
        let fitted = AlphaBetaModel::fit(&samples);
        assert!((fitted.alpha - truth.alpha).abs() < 1e-12);
        assert!((fitted.beta - truth.beta).abs() < 1e-18);
        assert!(fitted.r_squared(&samples) > 0.999999);
    }

    #[test]
    fn alpha_beta_fit_tolerates_noise() {
        let truth = AlphaBetaModel::new(1e-4, 2e-9);
        let samples: Vec<(usize, f64)> = (1..50)
            .map(|i| {
                let m = i * 500_000;
                // ±2% deterministic "noise".
                let noise = 1.0 + 0.02 * ((i * 7919 % 13) as f64 / 13.0 - 0.5);
                (m, truth.time(m) * noise)
            })
            .collect();
        let fitted = AlphaBetaModel::fit(&samples);
        assert!((fitted.beta - truth.beta).abs() / truth.beta < 0.05);
        assert!(fitted.r_squared(&samples) > 0.99);
    }

    #[test]
    fn exp_fit_recovers_exact_curve() {
        let truth = ExpInverseModel::new(5e-5, 6e-4);
        let samples: Vec<(usize, f64)> = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192]
            .iter()
            .map(|&d| (d, truth.time(d)))
            .collect();
        let fitted = ExpInverseModel::fit(&samples);
        assert!((fitted.alpha - truth.alpha).abs() / truth.alpha < 1e-9);
        assert!((fitted.beta - truth.beta).abs() / truth.beta < 1e-9);
        assert!(fitted.log_r_squared(&samples) > 0.999999);
    }

    #[test]
    fn exp_model_is_monotone() {
        let m = ExpInverseModel::new(1e-4, 5e-4);
        let mut prev = 0.0;
        for d in [1usize, 64, 256, 1024, 4096, 8192] {
            let t = m.time(d);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn nct_threshold_exists_for_paper_like_models() {
        // Small tensors: comm startup dominates ⇒ compute locally (NCT);
        // large tensors: exponential compute blows past linear comm.
        let comp = ExpInverseModel::new(2e-4, 8e-4);
        let comm = AlphaBetaModel::new(3e-4, 2e-10);
        let thr = comp.nct_threshold(&comm, 8192).expect("threshold expected");
        assert!(thr > 64 && thr < 8192, "threshold {thr}");
        // Below the threshold computation is cheaper; above it isn't.
        assert!(comp.time(thr) < comm.time_packed(thr));
        assert!(comp.time(8192) > comm.time_packed(8192));
    }

    #[test]
    #[should_panic(expected = "needs ≥ 2 samples")]
    fn fit_rejects_single_sample() {
        let _ = AlphaBetaModel::fit(&[(1, 1.0)]);
    }
}
