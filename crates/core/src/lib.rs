//! # spdkfac-core
//!
//! The paper's contribution, implemented as a reusable library:
//!
//! - [`factors`]: running Kronecker-factor statistics `A_{l-1}`, `G_l`
//!   (Eq. 7/8) with Tikhonov damping (Eq. 12) and SPD inversion.
//! - [`precond`]: gradient preconditioning `G⁻¹ ∇W A⁻¹` (Eq. 11).
//! - [`perf`]: the paper's performance models — α-β collective costs
//!   (Eq. 14/27) and the exponential inversion-cost model (Eq. 26) — plus
//!   least-squares fitters (the Fig. 7/8 methodology).
//! - [`fusion`]: pipelining of factor communication with **dynamic tensor
//!   fusion** (§IV-A, Eq. 15) and the three baselines of Fig. 10.
//! - [`placement`]: **load-balancing placement** of the `2L` matrix
//!   inversions (Algorithm 1) with CT/NCT classification, plus the
//!   Seq-Dist (Eq. 22) and Non-Dist baselines of Fig. 12.
//! - [`optimizer`]: a single-process [`optimizer::KfacOptimizer`] — the
//!   "one extra line of code" API of §V.
//! - [`calibrate`]: **online cost-model calibration** — measured span
//!   durations re-fit the α-β / exponential models at runtime, with
//!   report-only detection of drift large enough to flip an Eq. 15 fusion
//!   or NCT/CT placement decision.
//! - [`runtime`]: the **adaptive re-planning runtime** — an epoch-versioned
//!   plan store plus a barrier-synchronized controller that all-reduces each
//!   rank's calibration refits, deterministically recomputes the fusion plan
//!   and LBP placement from the agreed models, and atomically swaps the
//!   active [`runtime::PlanEpoch`] (SPMD-safe: collectives are tagged with
//!   their plan generation).
//! - [`distributed`]: multi-worker trainers running real collectives:
//!   [`distributed::Algorithm::DKfac`], [`distributed::Algorithm::MpdKfac`]
//!   and [`distributed::Algorithm::SpdKfac`], which produce numerically
//!   identical parameter trajectories (§VI: "our proposed algorithms are
//!   systemic optimizations without affecting the numerical results").
//!
//! # Example: single-process K-FAC
//!
//! ```
//! use spdkfac_core::optimizer::{KfacConfig, KfacOptimizer};
//! use spdkfac_nn::data::gaussian_blobs;
//! use spdkfac_nn::loss::softmax_cross_entropy;
//! use spdkfac_nn::models::mlp;
//!
//! let mut net = mlp(&[4, 16, 3], 1);
//! let mut opt = KfacOptimizer::new(&net, KfacConfig { lr: 0.05, ..KfacConfig::default() });
//! let data = gaussian_blobs(3, 4, 20, 0.3, 2);
//! let (x, y) = data.batch(0, 60);
//! for _ in 0..20 {
//!     let out = net.forward(&x, true);           // capture K-FAC statistics
//!     let (_, grad) = softmax_cross_entropy(&out, &y);
//!     net.backward(&grad);
//!     opt.step(&mut net);                        // precondition + update
//! }
//! ```

pub mod calibrate;
pub mod distributed;
pub mod ekfac;
pub mod elastic;
pub mod error;
pub mod factors;
pub mod fusion;
pub mod optimizer;
pub mod perf;
pub mod placement;
pub mod precond;
pub mod runtime;

pub use error::KfacError;
pub use fusion::FusionStrategy;
pub use placement::PlacementStrategy;
