//! Elastic-runtime state handoff: a bit-exact, flat-`f64` checkpoint of one
//! rank's full training state, and the policy knobs of the elastic driver.
//!
//! ## Why a flat `f64` vector
//!
//! The handoff travels over the *existing* collectives (a broadcast from the
//! surviving rank 0 after each membership-epoch transition), whose payload
//! type is `Vec<f64>`. Packing into `f64` keeps the transfer on the exact
//! code path every other byte of training data takes — timeouts, wire
//! accounting, flight-recorder spans all included — at zero new transport
//! surface. All counts and dimensions are small integers, which `f64`
//! represents exactly (< 2⁵³), and payload values are `f64` already, so the
//! round-trip is **bit-exact** (proptest-asserted, NaN payloads included).
//!
//! ## SPMD safety across epochs
//!
//! K-FAC's factor/inverse state is *replicated* on every rank (factors are
//! all-reduced, inverses broadcast), so any survivor holds the full
//! authoritative state. After a resize, rank 0 of the new epoch broadcasts
//! this checkpoint and **every** rank — survivor or joiner — restores from
//! it. Survivors don't strictly need the data, but restoring everyone from
//! one buffer re-establishes bit-identical replicas by construction, which
//! is what makes the next epoch's collectives SPMD-safe (DESIGN §2.15).

use crate::factors::FactorState;
use spdkfac_collectives::TcpConfig;
use spdkfac_nn::optim::Sgd;
use spdkfac_nn::Sequential;
use spdkfac_tensor::Matrix;

/// Schema tag leading every packed checkpoint (`"ELCK"` + version 1).
const PACK_MAGIC: f64 = 0x0045_4C43_4B01_u64 as f64;

/// One preconditionable layer's factor snapshot inside a
/// [`TrainCheckpoint`]: the EMA factors and damped inverses, each absent
/// until the training loop first produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorCheckpoint {
    /// Network layer index this state belongs to.
    pub layer: usize,
    /// Running `A` EMA.
    pub a: Option<Matrix>,
    /// Running `G` EMA.
    pub g: Option<Matrix>,
    /// Damped inverse of `A`.
    pub a_inv: Option<Matrix>,
    /// Damped inverse of `G`.
    pub g_inv: Option<Matrix>,
}

impl FactorCheckpoint {
    /// Snapshots one layer's [`FactorState`].
    pub fn capture(st: &FactorState) -> FactorCheckpoint {
        FactorCheckpoint {
            layer: st.layer(),
            a: st.factor_a().cloned(),
            g: st.factor_g().cloned(),
            a_inv: st.a_inv().cloned(),
            g_inv: st.g_inv().cloned(),
        }
    }

    /// Rebuilds a [`FactorState`] holding exactly this snapshot.
    pub fn restore(&self) -> FactorState {
        let mut st = FactorState::new(self.layer);
        if let Some(a) = &self.a {
            // First update installs the matrix directly (no EMA blend).
            st.update_a(a.clone(), 0.0);
        }
        if let Some(g) = &self.g {
            st.update_g(g.clone(), 0.0);
        }
        if let Some(inv) = &self.a_inv {
            st.set_a_inv(inv.clone());
        }
        if let Some(inv) = &self.g_inv {
            st.set_g_inv(inv.clone());
        }
        st
    }
}

/// Complete optimizer + factor state of one rank at an iteration boundary —
/// everything a fresh process needs to continue the run bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Next iteration to execute (all prior iterations are complete).
    pub iter: usize,
    /// Globally-averaged losses of the completed iterations.
    pub losses: Vec<f64>,
    /// Flattened model parameters ([`Sequential::flat_params`] order).
    pub params: Vec<f64>,
    /// SGD momentum buffers (positional; empty before the first step).
    pub velocity: Vec<Matrix>,
    /// Per-preconditionable-layer factor state, layer order.
    pub factors: Vec<FactorCheckpoint>,
    /// EKFAC eigenbases `(Q, λ)` per inversion tensor (`2L`, A/G
    /// interleaved); all `None` outside `Algorithm::EkfacSpd`.
    pub ekfac_bases: Vec<Option<(Matrix, Vec<f64>)>>,
    /// EKFAC eigenbasis second-moment scales per layer (`L`).
    pub ekfac_scales: Vec<Option<Matrix>>,
}

impl TrainCheckpoint {
    /// Snapshots a rank's live training state. `states`, `bases` and
    /// `scales` are the trainer's working vectors; `net`/`sgd` contribute
    /// parameters and momentum.
    pub fn capture(
        iter: usize,
        losses: &[f64],
        net: &Sequential,
        sgd: &Sgd,
        states: &[FactorState],
        ekfac_bases: &[Option<(Matrix, Vec<f64>)>],
        ekfac_scales: &[Option<Matrix>],
    ) -> TrainCheckpoint {
        TrainCheckpoint {
            iter,
            losses: losses.to_vec(),
            params: net.flat_params(),
            velocity: sgd.velocity().to_vec(),
            factors: states.iter().map(FactorCheckpoint::capture).collect(),
            ekfac_bases: ekfac_bases.to_vec(),
            ekfac_scales: ekfac_scales.to_vec(),
        }
    }

    /// Serializes to the flat `f64` wire vector. Inverse of
    /// [`TrainCheckpoint::unpack`]; bit-exact round trip.
    pub fn pack(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(64 + self.params.len() + self.losses.len());
        out.push(PACK_MAGIC);
        out.push(self.iter as f64);
        pack_vec(&mut out, &self.losses);
        pack_vec(&mut out, &self.params);
        out.push(self.velocity.len() as f64);
        for m in &self.velocity {
            pack_matrix(&mut out, m);
        }
        out.push(self.factors.len() as f64);
        for f in &self.factors {
            out.push(f.layer as f64);
            pack_opt_matrix(&mut out, f.a.as_ref());
            pack_opt_matrix(&mut out, f.g.as_ref());
            pack_opt_matrix(&mut out, f.a_inv.as_ref());
            pack_opt_matrix(&mut out, f.g_inv.as_ref());
        }
        out.push(self.ekfac_bases.len() as f64);
        for b in &self.ekfac_bases {
            match b {
                None => out.push(0.0),
                Some((q, vals)) => {
                    out.push(1.0);
                    pack_matrix(&mut out, q);
                    pack_vec(&mut out, vals);
                }
            }
        }
        out.push(self.ekfac_scales.len() as f64);
        for s in &self.ekfac_scales {
            pack_opt_matrix(&mut out, s.as_ref());
        }
        out
    }

    /// Deserializes a [`TrainCheckpoint::pack`] vector.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation (bad magic,
    /// truncated section, absurd count) — which on the elastic path means
    /// the handoff broadcast was corrupt and the joiner must abort.
    pub fn unpack(data: &[f64]) -> Result<TrainCheckpoint, String> {
        let mut r = Reader { data, pos: 0 };
        let magic = r.f64()?;
        if magic.to_bits() != PACK_MAGIC.to_bits() {
            return Err(format!("checkpoint magic mismatch: {magic}"));
        }
        let iter = r.count("iter")?;
        let losses = r.vec("losses")?;
        let params = r.vec("params")?;
        let nv = r.count("velocity count")?;
        let mut velocity = Vec::with_capacity(nv);
        for _ in 0..nv {
            velocity.push(r.matrix("velocity")?);
        }
        let nf = r.count("factor count")?;
        let mut factors = Vec::with_capacity(nf);
        for _ in 0..nf {
            factors.push(FactorCheckpoint {
                layer: r.count("factor layer")?,
                a: r.opt_matrix("factor A")?,
                g: r.opt_matrix("factor G")?,
                a_inv: r.opt_matrix("factor A⁻¹")?,
                g_inv: r.opt_matrix("factor G⁻¹")?,
            });
        }
        let nb = r.count("basis count")?;
        let mut ekfac_bases = Vec::with_capacity(nb);
        for _ in 0..nb {
            ekfac_bases.push(match r.tag("basis tag")? {
                false => None,
                true => {
                    let q = r.matrix("basis Q")?;
                    let vals = r.vec("basis λ")?;
                    Some((q, vals))
                }
            });
        }
        let ns = r.count("scale count")?;
        let mut ekfac_scales = Vec::with_capacity(ns);
        for _ in 0..ns {
            ekfac_scales.push(r.opt_matrix("scale")?);
        }
        if r.pos != data.len() {
            return Err(format!(
                "checkpoint has {} trailing values",
                data.len() - r.pos
            ));
        }
        Ok(TrainCheckpoint {
            iter,
            losses,
            params,
            velocity,
            factors,
            ekfac_bases,
            ekfac_scales,
        })
    }
}

fn pack_vec(out: &mut Vec<f64>, v: &[f64]) {
    out.push(v.len() as f64);
    out.extend_from_slice(v);
}

fn pack_matrix(out: &mut Vec<f64>, m: &Matrix) {
    out.push(m.rows() as f64);
    out.push(m.cols() as f64);
    out.extend_from_slice(m.as_slice());
}

fn pack_opt_matrix(out: &mut Vec<f64>, m: Option<&Matrix>) {
    match m {
        None => out.push(0.0),
        Some(m) => {
            out.push(1.0);
            pack_matrix(out, m);
        }
    }
}

struct Reader<'a> {
    data: &'a [f64],
    pos: usize,
}

/// Sections are length-prefixed with exact small integers; anything else in
/// a count slot means a torn or foreign buffer.
const MAX_COUNT: f64 = (1u64 << 40) as f64;

impl Reader<'_> {
    fn f64(&mut self) -> Result<f64, String> {
        let v = self
            .data
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("checkpoint truncated at {}", self.pos))?;
        self.pos += 1;
        Ok(v)
    }

    fn count(&mut self, what: &str) -> Result<usize, String> {
        let v = self.f64()?;
        if !(0.0..MAX_COUNT).contains(&v) || v.fract() != 0.0 {
            return Err(format!("checkpoint {what} of {v} is not a count"));
        }
        Ok(v as usize)
    }

    fn tag(&mut self, what: &str) -> Result<bool, String> {
        let v = self.f64()?;
        if v == 0.0 {
            Ok(false)
        } else if v == 1.0 {
            Ok(true)
        } else {
            Err(format!("checkpoint {what} of {v} is not 0/1"))
        }
    }

    fn slice(&mut self, n: usize, what: &str) -> Result<&[f64], String> {
        if self.pos + n > self.data.len() {
            return Err(format!("checkpoint {what} truncated"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn vec(&mut self, what: &str) -> Result<Vec<f64>, String> {
        let n = self.count(what)?;
        Ok(self.slice(n, what)?.to_vec())
    }

    fn matrix(&mut self, what: &str) -> Result<Matrix, String> {
        let rows = self.count(what)?;
        let cols = self.count(what)?;
        let data = self.slice(rows * cols, what)?.to_vec();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn opt_matrix(&mut self, what: &str) -> Result<Option<Matrix>, String> {
        Ok(match self.tag(what)? {
            false => None,
            true => Some(self.matrix(what)?),
        })
    }
}

/// One stable-membership interval of an elastic run: the world held `world`
/// ranks from iteration `from_iter` until the next span (or the end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipSpan {
    /// Membership epoch of this interval.
    pub epoch: u64,
    /// World size during the interval.
    pub world: usize,
    /// First iteration executed under this epoch.
    pub from_iter: usize,
}

/// Elastic-driver knobs for a [`TrainSession`](crate::distributed::TrainSession).
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    /// The long-lived rendezvous to join
    /// ([`spdkfac_collectives::tcp::ElasticRendezvous`]) and ring wiring
    /// parameters.
    pub tcp: TcpConfig,
    /// Poll the rendezvous for pending joiners every this many iterations
    /// (rank 0 only; the verdict rides the loss all-reduce so every rank
    /// agrees). 0 disables planned grows — only failures trigger resizes.
    pub poll_every: usize,
    /// Abort after this many membership epochs (runaway churn guard).
    pub max_epochs: u64,
    /// Stop (with an error) rather than continue below this world size.
    pub min_world: usize,
    /// Leave the group voluntarily after completing this iteration count:
    /// the worker drops its endpoint and returns without rejoining. The
    /// graceful half of fault injection — peers observe it exactly like a
    /// crash. `None` = run to completion.
    pub leave_after: Option<usize>,
    /// Epoch-0 rank claim forwarded to the rendezvous (`None` = arrival
    /// order). Ignored on rejoin, where survivor order rules.
    pub claim: Option<usize>,
}

impl ElasticPolicy {
    /// Defaults: poll every iteration, 16 epochs max, shrink floor 1.
    pub fn new(tcp: TcpConfig) -> ElasticPolicy {
        ElasticPolicy {
            tcp,
            poll_every: 1,
            max_epochs: 16,
            min_world: 1,
            leave_after: None,
            claim: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn mat_bits(m: &Matrix) -> (usize, usize, Vec<u64>) {
        (m.rows(), m.cols(), bits(m.as_slice()))
    }

    /// Structural + bit equality (PartialEq would reject NaN payloads).
    fn assert_bit_eq(a: &TrainCheckpoint, b: &TrainCheckpoint) {
        assert_eq!(a.iter, b.iter);
        assert_eq!(bits(&a.losses), bits(&b.losses));
        assert_eq!(bits(&a.params), bits(&b.params));
        assert_eq!(a.velocity.len(), b.velocity.len());
        for (x, y) in a.velocity.iter().zip(&b.velocity) {
            assert_eq!(mat_bits(x), mat_bits(y));
        }
        assert_eq!(a.factors.len(), b.factors.len());
        for (x, y) in a.factors.iter().zip(&b.factors) {
            assert_eq!(x.layer, y.layer);
            for (mx, my) in [(&x.a, &y.a), (&x.g, &y.g), (&x.a_inv, &y.a_inv)] {
                assert_eq!(mx.as_ref().map(mat_bits), my.as_ref().map(mat_bits));
            }
            assert_eq!(
                x.g_inv.as_ref().map(mat_bits),
                y.g_inv.as_ref().map(mat_bits)
            );
        }
        assert_eq!(a.ekfac_bases.len(), b.ekfac_bases.len());
        for (x, y) in a.ekfac_bases.iter().zip(&b.ekfac_bases) {
            match (x, y) {
                (None, None) => {}
                (Some((qx, vx)), Some((qy, vy))) => {
                    assert_eq!(mat_bits(qx), mat_bits(qy));
                    assert_eq!(bits(vx), bits(vy));
                }
                _ => panic!("basis presence mismatch"),
            }
        }
        for (x, y) in a.ekfac_scales.iter().zip(&b.ekfac_scales) {
            assert_eq!(x.as_ref().map(mat_bits), y.as_ref().map(mat_bits));
        }
    }

    /// Any f64, including ±∞, NaN and subnormals — payload slots must carry
    /// all of them verbatim.
    fn any_f64() -> impl Strategy<Value = f64> {
        (0u64..4, -1e300f64..1e300).prop_map(|(k, v)| match k {
            0 => v,
            1 => f64::NAN,
            2 => f64::INFINITY * v.signum(),
            _ => v * 1e-310, // subnormal territory
        })
    }

    fn any_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
        (1..max_dim + 1, 1..max_dim + 1).prop_flat_map(|(r, c)| {
            pvec(any_f64(), r * c).prop_map(move |d| Matrix::from_vec(r, c, d))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn pack_unpack_is_bit_exact(
            iter in 0usize..1_000_000,
            losses in pvec(any_f64(), 0..20),
            params in pvec(any_f64(), 0..200),
            velocity in pvec(any_matrix(5), 0..4),
            layers in pvec((0usize..32, 0u8..16), 0..4),
            with_bases in (0u8..2).prop_map(|b| b == 1),
        ) {
            let factors: Vec<FactorCheckpoint> = layers
                .iter()
                .map(|&(layer, mask)| FactorCheckpoint {
                    layer,
                    a: (mask & 1 != 0).then(|| Matrix::from_vec(2, 2, vec![1.0, f64::NAN, -0.0, 4.0])),
                    g: (mask & 2 != 0).then(|| Matrix::from_vec(1, 3, vec![5.0, 6.0, 7.0])),
                    a_inv: (mask & 4 != 0).then(|| Matrix::from_vec(2, 2, vec![0.5; 4])),
                    g_inv: (mask & 8 != 0).then(|| Matrix::from_vec(3, 3, vec![0.25; 9])),
                })
                .collect();
            let l = factors.len();
            let ekfac_bases: Vec<Option<(Matrix, Vec<f64>)>> = (0..2 * l)
                .map(|t| {
                    (with_bases && t % 2 == 0)
                        .then(|| (Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]), vec![0.5, 2.0]))
                })
                .collect();
            let ekfac_scales: Vec<Option<Matrix>> = (0..l)
                .map(|i| with_bases.then(|| Matrix::from_vec(1, 1, vec![i as f64])))
                .collect();
            let ckpt = TrainCheckpoint {
                iter,
                losses,
                params,
                velocity,
                factors,
                ekfac_bases,
                ekfac_scales,
            };
            let packed = ckpt.pack();
            let back = TrainCheckpoint::unpack(&packed).expect("round trip");
            assert_bit_eq(&ckpt, &back);
        }
    }

    #[test]
    fn unpack_rejects_garbage_and_truncation() {
        assert!(TrainCheckpoint::unpack(&[]).is_err());
        assert!(TrainCheckpoint::unpack(&[1.0, 2.0, 3.0]).is_err());
        let mut good = TrainCheckpoint {
            iter: 3,
            losses: vec![0.5],
            params: vec![1.0, 2.0],
            velocity: vec![],
            factors: vec![],
            ekfac_bases: vec![],
            ekfac_scales: vec![],
        }
        .pack();
        // Truncation and trailing garbage both fail loudly.
        assert!(TrainCheckpoint::unpack(&good[..good.len() - 1]).is_err());
        good.push(0.0);
        assert!(TrainCheckpoint::unpack(&good).is_err());
    }

    #[test]
    fn factor_checkpoint_round_trips_through_factor_state() {
        let mut st = FactorState::new(4);
        st.update_a(Matrix::from_vec(2, 2, vec![2.0, 0.1, 0.1, 3.0]), 0.9);
        st.update_g(Matrix::from_vec(1, 1, vec![7.0]), 0.9);
        st.set_a_inv(Matrix::from_vec(2, 2, vec![0.5, 0.0, 0.0, 0.5]));
        let snap = FactorCheckpoint::capture(&st);
        let back = snap.restore();
        assert_eq!(back.layer(), 4);
        assert_eq!(
            back.factor_a().unwrap().as_slice(),
            st.factor_a().unwrap().as_slice()
        );
        assert_eq!(
            back.factor_g().unwrap().as_slice(),
            st.factor_g().unwrap().as_slice()
        );
        assert_eq!(
            back.a_inv().unwrap().as_slice(),
            st.a_inv().unwrap().as_slice()
        );
        assert!(back.g_inv().is_none());
    }
}
