//! Gradient preconditioning with inverted Kronecker factors (Eq. 11).

use crate::factors::FactorState;
use spdkfac_tensor::{kron, Matrix};

/// Preconditions a weight gradient: `∇̃W = G⁻¹ · ∇W · A⁻¹`.
///
/// # Panics
///
/// Panics if the inverses have not been computed yet or shapes mismatch.
pub fn precondition_weight(state: &FactorState, grad: &Matrix) -> Matrix {
    let a_inv = state.a_inv().expect("A inverse not computed");
    let g_inv = state.g_inv().expect("G inverse not computed");
    kron::precondition_gradient(grad, a_inv, g_inv)
}

/// Preconditions a bias gradient with the output-side factor only:
/// `∇̃b = G⁻¹ · ∇b`.
///
/// The factor dimensions here carry no bias augmentation (DESIGN.md §4), so
/// the input-side factor for the bias is the scalar `E[1·1ᵀ] = 1` and only
/// `G⁻¹` applies.
///
/// # Panics
///
/// Panics if the `G` inverse has not been computed yet or shapes mismatch.
pub fn precondition_bias(state: &FactorState, grad: &Matrix) -> Matrix {
    let g_inv = state.g_inv().expect("G inverse not computed");
    g_inv.matmul(grad)
}

/// Builds per-parameter update directions for a whole model: weight/bias
/// gradients of preconditioned layers pass through their factor inverses,
/// everything else passes through unchanged. Returns `(directions, raw)`
/// in the model's flat parameter order (`raw` feeds the KL clip).
///
/// `state_of_layer[l]` maps layer index to an index into `states` (or `None`
/// for non-preconditioned layers). States without computed inverses fall
/// back to the raw gradient.
pub fn build_directions(
    net: &spdkfac_nn::Sequential,
    state_of_layer: &[Option<usize>],
    states: &[FactorState],
) -> (Vec<Matrix>, Vec<Matrix>) {
    let mut directions = Vec::new();
    let mut raw = Vec::new();
    for (li, layer) in net.layers().iter().enumerate() {
        let params = layer.params();
        match state_of_layer.get(li).copied().flatten() {
            Some(si) if states[si].a_inv().is_some() => {
                let st = &states[si];
                for (pi, p) in params.iter().enumerate() {
                    raw.push(p.grad.clone());
                    if pi == 0 {
                        directions.push(precondition_weight(st, &p.grad));
                    } else {
                        directions.push(precondition_bias(st, &p.grad));
                    }
                }
            }
            _ => {
                for p in params {
                    raw.push(p.grad.clone());
                    directions.push(p.grad.clone());
                }
            }
        }
    }
    (directions, raw)
}

/// Scales update directions so the predicted KL step stays below
/// `kl_clip` — the standard K-FAC trust-region heuristic:
/// `ν = min(1, sqrt(kl_clip / Σ_l ⟨∇̃, ∇⟩ · lr²))`.
///
/// Returns the scale factor ν applied in place to `directions`.
pub fn apply_kl_clip(
    directions: &mut [Matrix],
    raw_grads: &[Matrix],
    lr: f64,
    kl_clip: f64,
) -> f64 {
    assert_eq!(
        directions.len(),
        raw_grads.len(),
        "kl_clip: length mismatch"
    );
    let mut vg_sum = 0.0;
    for (d, g) in directions.iter().zip(raw_grads.iter()) {
        let dot: f64 = d
            .as_slice()
            .iter()
            .zip(g.as_slice().iter())
            .map(|(a, b)| a * b)
            .sum();
        vg_sum += dot * lr * lr;
    }
    let nu = if vg_sum > 0.0 {
        (kl_clip / vg_sum).sqrt().min(1.0)
    } else {
        1.0
    };
    if nu < 1.0 {
        for d in directions.iter_mut() {
            d.scale(nu);
        }
    }
    nu
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_nn::KfacCapture;
    use spdkfac_tensor::rng::MatrixRng;

    fn ready_state(seed: u64, da: usize, dg: usize) -> FactorState {
        let mut rng = MatrixRng::new(seed);
        let cap = KfacCapture {
            a_rows: rng.gaussian_matrix(da + 8, da),
            g_rows: rng.gaussian_matrix(da + 8, dg),
            batch: da + 8,
        };
        let mut st = FactorState::new(0);
        st.update_from_capture(&cap, 0.95);
        st.refresh_inverses(0.3).unwrap();
        st
    }

    #[test]
    fn identity_factors_leave_grad_unchanged() {
        let mut st = FactorState::new(0);
        st.set_a_inv(Matrix::identity(3));
        st.set_g_inv(Matrix::identity(2));
        let mut rng = MatrixRng::new(1);
        let grad = rng.uniform_matrix(2, 3, -1.0, 1.0);
        let out = precondition_weight(&st, &grad);
        assert!(out.max_abs_diff(&grad) < 1e-15);
    }

    #[test]
    fn preconditioning_matches_manual_product() {
        let st = ready_state(2, 4, 3);
        let mut rng = MatrixRng::new(3);
        let grad = rng.uniform_matrix(3, 4, -1.0, 1.0);
        let out = precondition_weight(&st, &grad);
        let manual = st
            .g_inv()
            .unwrap()
            .matmul(&grad)
            .matmul(st.a_inv().unwrap());
        assert!(out.max_abs_diff(&manual) < 1e-14);
    }

    #[test]
    fn bias_uses_g_only() {
        let st = ready_state(4, 4, 3);
        let grad = Matrix::from_vec(3, 1, vec![1.0, -1.0, 0.5]);
        let out = precondition_bias(&st, &grad);
        let manual = st.g_inv().unwrap().matmul(&grad);
        assert!(out.max_abs_diff(&manual) < 1e-14);
    }

    #[test]
    fn kl_clip_noop_when_step_is_small() {
        let mut dirs = vec![Matrix::from_rows(&[&[1e-6]])];
        let grads = vec![Matrix::from_rows(&[&[1e-6]])];
        let nu = apply_kl_clip(&mut dirs, &grads, 0.01, 1e-3);
        assert_eq!(nu, 1.0);
        assert_eq!(dirs[0][(0, 0)], 1e-6);
    }

    #[test]
    fn kl_clip_scales_large_steps() {
        let mut dirs = vec![Matrix::from_rows(&[&[100.0]])];
        let grads = vec![Matrix::from_rows(&[&[100.0]])];
        let nu = apply_kl_clip(&mut dirs, &grads, 1.0, 1e-3);
        assert!(nu < 1.0);
        assert!((dirs[0][(0, 0)] - 100.0 * nu).abs() < 1e-12);
    }
}
