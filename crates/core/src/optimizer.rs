//! Single-process K-FAC optimizer — the "one extra line of code" API (§V).

use crate::error::KfacError;
use crate::factors::FactorState;
use crate::precond::apply_kl_clip;
use spdkfac_nn::optim::Sgd;
use spdkfac_nn::Sequential;

/// Levenberg–Marquardt damping adaptation (Martens & Grosse 2015, §6.5):
/// every `interval` steps compare the actual loss change against the
/// quadratic model's prediction and scale the damping by `omega` when the
/// model is trustworthy (ρ > 3/4) or by `1/omega` when it is not (ρ < 1/4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmDamping {
    /// Adaptation interval in steps.
    pub interval: usize,
    /// Multiplicative factor in `(0, 1)` applied when shrinking damping.
    pub omega: f64,
    /// Lower damping bound.
    pub min: f64,
    /// Upper damping bound.
    pub max: f64,
}

impl Default for LmDamping {
    fn default() -> Self {
        LmDamping {
            interval: 5,
            omega: 0.95,
            min: 1e-8,
            max: 10.0,
        }
    }
}

/// Hyper-parameters of the K-FAC update (Eq. 12/13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KfacConfig {
    /// Learning rate α.
    pub lr: f64,
    /// Classical momentum μ.
    pub momentum: f64,
    /// L2 weight decay λ.
    pub weight_decay: f64,
    /// Tikhonov damping γ added before inversion (Eq. 12).
    pub damping: f64,
    /// Exponential decay of the running factor statistics.
    pub stat_decay: f64,
    /// Recompute the factor inverses every this many steps (1 = every step,
    /// matching the paper's timed configuration).
    pub inv_update_freq: usize,
    /// Optional KL trust-region clip on the preconditioned step.
    pub kl_clip: Option<f64>,
    /// Optional Levenberg–Marquardt damping adaptation (use
    /// [`KfacOptimizer::step_adaptive`] to drive it).
    pub lm_damping: Option<LmDamping>,
}

impl Default for KfacConfig {
    fn default() -> Self {
        KfacConfig {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
            damping: 0.03,
            stat_decay: 0.95,
            inv_update_freq: 1,
            kl_clip: None,
            lm_damping: None,
        }
    }
}

/// Single-process K-FAC optimizer.
///
/// Drive it like the paper's `SPDKFACOptimizer`: run `forward(x, true)` to
/// capture statistics, compute the loss gradient, run `backward`, then call
/// [`KfacOptimizer::step`]. See the [crate-level example](crate).
#[derive(Debug)]
pub struct KfacOptimizer {
    cfg: KfacConfig,
    /// Factor state per preconditionable layer.
    states: Vec<FactorState>,
    /// `state_of_layer[layer_index] = Some(state_index)`.
    state_of_layer: Vec<Option<usize>>,
    sgd: Sgd,
    steps: usize,
    /// Current damping (equals `cfg.damping` unless LM adaptation moves it).
    damping: f64,
}

impl KfacOptimizer {
    /// Creates an optimizer for `net`, discovering its preconditionable
    /// layers.
    pub fn new(net: &Sequential, cfg: KfacConfig) -> Self {
        let pre = net.preconditionable();
        let mut state_of_layer = vec![None; net.len()];
        let mut states = Vec::with_capacity(pre.len());
        for (si, &li) in pre.iter().enumerate() {
            state_of_layer[li] = Some(si);
            states.push(FactorState::new(li));
        }
        KfacOptimizer {
            sgd: Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay),
            damping: cfg.damping,
            cfg,
            states,
            state_of_layer,
            steps: 0,
        }
    }

    /// The current damping value (moves under LM adaptation).
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Number of layers that receive Kronecker preconditioning.
    pub fn num_preconditioned_layers(&self) -> usize {
        self.states.len()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Borrow the per-layer factor states (testing / inspection).
    pub fn states(&self) -> &[FactorState] {
        &self.states
    }

    /// Consumes the captured statistics of the last forward/backward pair,
    /// preconditions all gradients and applies the update.
    ///
    /// # Errors
    ///
    /// Returns [`KfacError::FactorInversion`] when a damped factor cannot be
    /// inverted (increase `damping`).
    ///
    /// # Panics
    ///
    /// Panics if called before a captured forward/backward pass has run.
    pub fn step(&mut self, net: &mut Sequential) -> Result<(), KfacError> {
        // 1. Fold fresh statistics into the running factors.
        let captures = net.take_captures();
        assert!(
            !captures.is_empty() || self.states.is_empty(),
            "KfacOptimizer::step: no captured statistics — run forward(x, true) + backward first"
        );
        for (layer, cap) in &captures {
            let si = self.state_of_layer[*layer].expect("capture from unknown layer");
            self.states[si].update_from_capture(cap, self.cfg.stat_decay);
        }
        // 2. Refresh inverses on schedule.
        if self.steps.is_multiple_of(self.cfg.inv_update_freq.max(1)) {
            for st in &mut self.states {
                st.refresh_inverses(self.damping)?;
            }
        }
        // 3. Build preconditioned update directions in parameter order.
        let (mut directions, raw) =
            crate::precond::build_directions(net, &self.state_of_layer, &self.states);
        // 4. Optional KL clip, then the SGD-style update.
        if let Some(clip) = self.cfg.kl_clip {
            apply_kl_clip(&mut directions, &raw, self.cfg.lr, clip);
        }
        self.sgd
            .step_with_directions(&mut net.parameters_mut(), &directions);
        self.steps += 1;
        Ok(())
    }

    /// Like [`KfacOptimizer::step`], but also runs Levenberg–Marquardt
    /// damping adaptation when `cfg.lm_damping` is set: `eval_loss` must
    /// re-evaluate the mini-batch loss (without capture) so the actual loss
    /// change can be compared against the quadratic model's prediction.
    ///
    /// Momentum should be zero when using LM adaptation (the quadratic model
    /// predicts the pure preconditioned step).
    ///
    /// # Errors
    ///
    /// Same as [`KfacOptimizer::step`].
    pub fn step_adaptive(
        &mut self,
        net: &mut Sequential,
        eval_loss: &mut dyn FnMut(&mut Sequential) -> f64,
    ) -> Result<(), KfacError> {
        let Some(lm) = self.cfg.lm_damping else {
            return self.step(net);
        };
        let adapt_now = self.steps.is_multiple_of(lm.interval.max(1));
        if !adapt_now {
            return self.step(net);
        }
        // Statistics + inverses, as in `step`.
        let captures = net.take_captures();
        for (layer, cap) in &captures {
            let si = self.state_of_layer[*layer].expect("capture from unknown layer");
            self.states[si].update_from_capture(cap, self.cfg.stat_decay);
        }
        for st in &mut self.states {
            st.refresh_inverses(self.damping)?;
        }
        let (mut directions, raw) =
            crate::precond::build_directions(net, &self.state_of_layer, &self.states);
        if let Some(clip) = self.cfg.kl_clip {
            apply_kl_clip(&mut directions, &raw, self.cfg.lr, clip);
        }
        // Quadratic model of the step δ = −lr·d:
        //   M(δ) − M(0) = ∇ᵀδ + ½ δᵀ(F̂+γI)δ
        // with F̂δ computed layer-wise via the Kronecker identity
        // (G+γI) δ (A+γI); non-preconditioned parameters use F̂ = I.
        let lr = self.cfg.lr;
        let mut predicted = 0.0;
        let mut di = 0usize;
        for (li, layer) in net.layers().iter().enumerate() {
            let params = layer.params();
            let state = self.state_of_layer[li].map(|si| &self.states[si]);
            for (pi, p) in params.iter().enumerate() {
                let d = &directions[di];
                let g = &p.grad;
                let dot_gd: f64 = g
                    .as_slice()
                    .iter()
                    .zip(d.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                let fd = match (state, pi) {
                    (Some(st), 0) => {
                        // (G+γI) d (A+γI).
                        let ga = st.damped_g(self.damping).matmul(d);
                        ga.matmul(&st.damped_a(self.damping))
                    }
                    (Some(st), _) => st.damped_g(self.damping).matmul(d),
                    (None, _) => d.clone(),
                };
                let dot_dfd: f64 = d
                    .as_slice()
                    .iter()
                    .zip(fd.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                predicted += -lr * dot_gd + 0.5 * lr * lr * dot_dfd;
                di += 1;
            }
        }
        let loss_before = eval_loss(net);
        self.sgd
            .step_with_directions(&mut net.parameters_mut(), &directions);
        let loss_after = eval_loss(net);
        self.steps += 1;
        // Reduction ratio ρ; only adapt when the model predicts a decrease.
        if predicted < 0.0 {
            let rho = (loss_after - loss_before) / predicted;
            if rho > 0.75 {
                self.damping *= lm.omega;
            } else if rho < 0.25 {
                self.damping /= lm.omega;
            }
            self.damping = self.damping.clamp(lm.min, lm.max);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_nn::data::{gaussian_blobs, ill_conditioned_blobs, Dataset};
    use spdkfac_nn::loss::softmax_cross_entropy;
    use spdkfac_nn::models::mlp;

    fn train_losses(data: &Dataset, use_kfac: bool, lr: f64, iters: usize, seed: u64) -> Vec<f64> {
        let dims = [data.inputs().features(), 32, 3];
        let mut net = mlp(&dims, seed);
        let (x, y) = data.batch(0, data.len());
        let mut losses = Vec::with_capacity(iters);
        if use_kfac {
            let mut opt = KfacOptimizer::new(
                &net,
                KfacConfig {
                    lr,
                    momentum: 0.0,
                    damping: 0.03,
                    ..KfacConfig::default()
                },
            );
            for _ in 0..iters {
                let out = net.forward(&x, true);
                let (loss, grad) = softmax_cross_entropy(&out, &y);
                net.backward(&grad);
                opt.step(&mut net).unwrap();
                losses.push(loss);
            }
        } else {
            let mut sgd = Sgd::new(lr, 0.0, 0.0);
            for _ in 0..iters {
                let out = net.forward(&x, false);
                let (loss, grad) = softmax_cross_entropy(&out, &y);
                net.backward(&grad);
                sgd.step(&mut net.parameters_mut());
                losses.push(loss);
            }
        }
        losses
    }

    #[test]
    fn discovers_preconditionable_layers() {
        let net = mlp(&[4, 8, 3], 1);
        let opt = KfacOptimizer::new(&net, KfacConfig::default());
        assert_eq!(opt.num_preconditioned_layers(), 2);
    }

    #[test]
    fn step_reduces_loss() {
        let data = gaussian_blobs(3, 6, 20, 0.3, 7);
        let losses = train_losses(&data, true, 0.05, 30, 3);
        assert!(
            losses.last().unwrap() < &(0.3 * losses[0]),
            "kfac failed to train: {:?} -> {:?}",
            losses[0],
            losses.last()
        );
    }

    #[test]
    fn kfac_beats_sgd_on_ill_conditioned_problem() {
        // The second-order pitch (§I): on badly-scaled inputs K-FAC reaches a
        // loss target in far fewer iterations than SGD at its best fixed lr.
        // Seed chosen (with the in-tree xoshiro stream) to land in the
        // genuinely ill-conditioned regime; many seeds yield blobs easy
        // enough that SGD also reaches ~0 loss within the budget.
        let data = ill_conditioned_blobs(3, 8, 30, 0.3, 100.0, 21);
        let iters = 60;
        let kfac = train_losses(&data, true, 0.1, iters, 5);
        // Give SGD a sweep of learning rates and take its best final loss.
        let mut best_sgd = f64::INFINITY;
        for lr in [0.3, 0.1, 0.03, 0.01, 0.003] {
            let l = train_losses(&data, false, lr, iters, 5);
            let last = *l.last().unwrap();
            if last.is_finite() {
                best_sgd = best_sgd.min(last);
            }
        }
        let kfac_last = *kfac.last().unwrap();
        assert!(
            kfac_last < 0.5 * best_sgd,
            "kfac {kfac_last} should beat best sgd {best_sgd}"
        );
    }

    #[test]
    fn inv_update_freq_skips_refreshes() {
        let data = gaussian_blobs(2, 4, 10, 0.3, 9);
        let mut net = mlp(&[4, 8, 2], 2);
        let mut opt = KfacOptimizer::new(
            &net,
            KfacConfig {
                inv_update_freq: 10,
                damping: 0.1,
                ..KfacConfig::default()
            },
        );
        let (x, y) = data.batch(0, 20);
        for _ in 0..3 {
            let out = net.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            opt.step(&mut net).unwrap();
        }
        assert_eq!(opt.steps(), 3);
    }

    #[test]
    fn lm_damping_adapts_and_keeps_training() {
        let data = gaussian_blobs(3, 6, 20, 0.3, 29);
        let (x, y) = data.batch(0, 60);
        let mut net = mlp(&[6, 16, 3], 8);
        let mut opt = KfacOptimizer::new(
            &net,
            KfacConfig {
                lr: 0.05,
                momentum: 0.0,
                damping: 0.3,
                lm_damping: Some(LmDamping {
                    interval: 1,
                    ..LmDamping::default()
                }),
                ..KfacConfig::default()
            },
        );
        let initial = opt.damping();
        let mut last = f64::INFINITY;
        for _ in 0..30 {
            let out = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            let (x2, y2) = (x.clone(), y.clone());
            opt.step_adaptive(&mut net, &mut |n| {
                let out = n.forward(&x2, false);
                softmax_cross_entropy(&out, &y2).0
            })
            .unwrap();
            last = loss;
        }
        assert!(last.is_finite() && last < 1.0, "training unstable: {last}");
        assert_ne!(opt.damping(), initial, "damping never adapted");
        assert!(opt.damping() >= 1e-8 && opt.damping() <= 10.0);
    }

    #[test]
    fn step_adaptive_without_lm_config_is_plain_step() {
        let data = gaussian_blobs(2, 4, 10, 0.3, 33);
        let (x, y) = data.batch(0, 20);
        let mut net = mlp(&[4, 8, 2], 6);
        let mut opt = KfacOptimizer::new(
            &net,
            KfacConfig {
                damping: 0.1,
                momentum: 0.0,
                ..KfacConfig::default()
            },
        );
        let out = net.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&out, &y);
        net.backward(&grad);
        opt.step_adaptive(&mut net, &mut |_| unreachable!("no eval without LM"))
            .unwrap();
        assert_eq!(opt.damping(), 0.1);
    }

    #[test]
    fn kl_clip_keeps_training_stable_with_huge_lr() {
        let data = gaussian_blobs(3, 6, 20, 0.3, 13);
        let mut net = mlp(&[6, 16, 3], 4);
        let mut opt = KfacOptimizer::new(
            &net,
            KfacConfig {
                lr: 5.0, // absurd without clipping
                momentum: 0.0,
                damping: 0.1,
                kl_clip: Some(1e-2),
                ..KfacConfig::default()
            },
        );
        let (x, y) = data.batch(0, 60);
        let mut last = f64::NAN;
        for _ in 0..20 {
            let out = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            opt.step(&mut net).unwrap();
            last = loss;
        }
        assert!(last.is_finite(), "training diverged despite kl clip");
    }
}
