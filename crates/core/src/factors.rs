//! Running Kronecker-factor statistics and damped inversion.

use crate::error::{FactorSide, KfacError};
use spdkfac_nn::KfacCapture;
use spdkfac_tensor::{chol, Matrix, SymPacked};

/// Per-layer Kronecker-factor state: exponential moving averages of
/// `A = E[a aᵀ]` and `G = E[ĝ ĝᵀ]` plus their damped inverses.
#[derive(Debug, Clone)]
pub struct FactorState {
    layer: usize,
    a: Option<Matrix>,
    g: Option<Matrix>,
    a_inv: Option<Matrix>,
    g_inv: Option<Matrix>,
}

impl FactorState {
    /// Creates empty state for preconditionable layer `layer`.
    pub fn new(layer: usize) -> Self {
        FactorState {
            layer,
            a: None,
            g: None,
            a_inv: None,
            g_inv: None,
        }
    }

    /// The layer index this state belongs to.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Folds a fresh capture into the running averages with decay
    /// `stat_decay` (first update installs the statistics directly).
    pub fn update_from_capture(&mut self, cap: &KfacCapture, stat_decay: f64) {
        self.update_factors(cap.factor_a(), cap.factor_g(), stat_decay);
    }

    /// Folds externally-computed (e.g. all-reduced) factor matrices into the
    /// running averages.
    pub fn update_factors(&mut self, a_new: Matrix, g_new: Matrix, stat_decay: f64) {
        self.update_a(a_new, stat_decay);
        self.update_g(g_new, stat_decay);
    }

    /// Folds a fresh `A` factor alone (the forward-pass side of the SPD
    /// pipeline, where `A` and `G` arrive in different passes).
    pub fn update_a(&mut self, a_new: Matrix, stat_decay: f64) {
        match &mut self.a {
            Some(a) => a.ema_update(stat_decay, &a_new),
            None => self.a = Some(a_new),
        }
    }

    /// Folds a fresh `G` factor alone (the backward-pass side).
    pub fn update_g(&mut self, g_new: Matrix, stat_decay: f64) {
        match &mut self.g {
            Some(g) => g.ema_update(stat_decay, &g_new),
            None => self.g = Some(g_new),
        }
    }

    /// Current running factor `A`, if any update has happened.
    pub fn factor_a(&self) -> Option<&Matrix> {
        self.a.as_ref()
    }

    /// Current running factor `G`, if any update has happened.
    pub fn factor_g(&self) -> Option<&Matrix> {
        self.g.as_ref()
    }

    /// The damped input factor `A + γI` ready for inversion (Eq. 12).
    ///
    /// # Panics
    ///
    /// Panics if no statistics have been accumulated yet.
    pub fn damped_a(&self, gamma: f64) -> Matrix {
        self.a.as_ref().expect("no A statistics yet").damped(gamma)
    }

    /// The damped output factor `G + γI` ready for inversion (Eq. 12).
    ///
    /// # Panics
    ///
    /// Panics if no statistics have been accumulated yet.
    pub fn damped_g(&self, gamma: f64) -> Matrix {
        self.g.as_ref().expect("no G statistics yet").damped(gamma)
    }

    /// Recomputes both damped inverses locally.
    ///
    /// # Errors
    ///
    /// Returns [`KfacError::FactorInversion`] when a damped factor is not
    /// positive definite (damping too small).
    pub fn refresh_inverses(&mut self, gamma: f64) -> Result<(), KfacError> {
        let a_inv = chol::spd_inverse(&self.damped_a(gamma)).map_err(|source| {
            KfacError::FactorInversion {
                layer: self.layer,
                factor: FactorSide::A,
                source,
            }
        })?;
        let g_inv = chol::spd_inverse(&self.damped_g(gamma)).map_err(|source| {
            KfacError::FactorInversion {
                layer: self.layer,
                factor: FactorSide::G,
                source,
            }
        })?;
        self.a_inv = Some(a_inv);
        self.g_inv = Some(g_inv);
        Ok(())
    }

    /// Installs an externally-computed (e.g. broadcast) inverse of `A`.
    pub fn set_a_inv(&mut self, inv: Matrix) {
        self.a_inv = Some(inv);
    }

    /// Installs an externally-computed (e.g. broadcast) inverse of `G`.
    pub fn set_g_inv(&mut self, inv: Matrix) {
        self.g_inv = Some(inv);
    }

    /// Current inverse of the damped `A`, if computed.
    pub fn a_inv(&self) -> Option<&Matrix> {
        self.a_inv.as_ref()
    }

    /// Current inverse of the damped `G`, if computed.
    pub fn g_inv(&self) -> Option<&Matrix> {
        self.g_inv.as_ref()
    }

    /// Packs the running factors for the wire (`A` then `G`), as the factor
    /// all-reduce does.
    ///
    /// # Panics
    ///
    /// Panics if no statistics have been accumulated yet.
    pub fn packed_factors(&self) -> (SymPacked, SymPacked) {
        (
            SymPacked::from_matrix(self.a.as_ref().expect("no A statistics yet")),
            SymPacked::from_matrix(self.g.as_ref().expect("no G statistics yet")),
        )
    }

    /// Overwrites the running factors from packed wire buffers (the receive
    /// side of the factor all-reduce).
    pub fn set_factors_from_packed(&mut self, a: &SymPacked, g: &SymPacked) {
        self.a = Some(a.to_matrix());
        self.g = Some(g.to_matrix());
    }
}

/// Computes the local `A` factor from captured input rows:
/// `A = aᵀa / rows` (Eq. 7 averaged over batch × spatial positions).
pub fn local_factor_a(a_rows: &Matrix) -> Matrix {
    a_rows.gramian_scaled(a_rows.rows() as f64)
}

/// Computes the local `G` factor from captured (mean-reduced) output-gradient
/// rows: `G = N²/rows · gᵀg` (Eq. 8 with per-sample rescaling, see
/// `spdkfac_nn::KfacCapture::factor_g`).
pub fn local_factor_g(g_rows: &Matrix, batch: usize) -> Matrix {
    let n = batch as f64;
    g_rows.gramian_scaled(g_rows.rows() as f64 / (n * n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_tensor::rng::MatrixRng;

    fn capture(seed: u64) -> KfacCapture {
        let mut rng = MatrixRng::new(seed);
        KfacCapture {
            a_rows: rng.gaussian_matrix(16, 4),
            g_rows: rng.gaussian_matrix(16, 3),
            batch: 16,
        }
    }

    #[test]
    fn first_update_installs_factors() {
        let mut st = FactorState::new(0);
        let cap = capture(1);
        st.update_from_capture(&cap, 0.95);
        assert!(st.factor_a().unwrap().max_abs_diff(&cap.factor_a()) < 1e-15);
        assert!(st.factor_g().unwrap().max_abs_diff(&cap.factor_g()) < 1e-15);
    }

    #[test]
    fn ema_blends_second_update() {
        let mut st = FactorState::new(0);
        let c1 = capture(1);
        let c2 = capture(2);
        st.update_from_capture(&c1, 0.9);
        st.update_from_capture(&c2, 0.9);
        let mut expect = c1.factor_a().clone();
        expect.ema_update(0.9, &c2.factor_a());
        assert!(st.factor_a().unwrap().max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn inverses_satisfy_identity() {
        let mut st = FactorState::new(2);
        st.update_from_capture(&capture(3), 0.95);
        st.refresh_inverses(0.1).unwrap();
        let prod = st.damped_a(0.1).matmul(st.a_inv().unwrap());
        assert!(prod.max_abs_diff(&Matrix::identity(4)) < 1e-8);
        let prod_g = st.damped_g(0.1).matmul(st.g_inv().unwrap());
        assert!(prod_g.max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }

    #[test]
    fn inversion_error_names_layer() {
        let mut st = FactorState::new(7);
        // Rank-deficient A with zero damping fails.
        let cap = KfacCapture {
            a_rows: Matrix::from_rows(&[&[1.0, 2.0]]),
            g_rows: Matrix::from_rows(&[&[1.0]]),
            batch: 1,
        };
        st.update_from_capture(&cap, 0.95);
        let err = st.refresh_inverses(0.0).unwrap_err();
        match err {
            KfacError::FactorInversion { layer, .. } => assert_eq!(layer, 7),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn local_factor_helpers_match_capture_methods() {
        let cap = capture(9);
        assert!(local_factor_a(&cap.a_rows).max_abs_diff(&cap.factor_a()) < 1e-14);
        assert!(local_factor_g(&cap.g_rows, cap.batch).max_abs_diff(&cap.factor_g()) < 1e-14);
    }

    #[test]
    fn packed_roundtrip_preserves_factors() {
        let mut st = FactorState::new(0);
        st.update_from_capture(&capture(5), 0.95);
        let (pa, pg) = st.packed_factors();
        let mut st2 = FactorState::new(0);
        st2.set_factors_from_packed(&pa, &pg);
        assert!(st2.factor_a().unwrap().max_abs_diff(st.factor_a().unwrap()) < 1e-15);
        assert!(st2.factor_g().unwrap().max_abs_diff(st.factor_g().unwrap()) < 1e-15);
    }
}
