//! Online cost-model calibration from recorded span streams.
//!
//! LBP (Algorithm 1) and dynamic tensor fusion (Eq. 15) both decide from
//! *a-priori* cost models: [`AlphaBetaModel`] for collectives (Eq. 14/27)
//! and [`ExpInverseModel`] for inversions (Eq. 26). The paper fits those
//! models offline (Fig. 7/8); this module closes the loop online:
//!
//! 1. **Ingest** — measured `(size, seconds)` samples are streamed out of a
//!    [`Recorder`]'s spans into rolling windows, keyed by operation kind.
//!    Collective spans carry their element count and edge shape in
//!    [`spdkfac_obs::SpanMeta`] (`Join` → all-reduce, `FanOut` →
//!    broadcast); per-tensor `InverseComp` spans carry the tensor dimension.
//! 2. **Refit** — each window is re-fit with the matching least-squares
//!    fitter from [`crate::perf`], guarded so a degenerate window (too few
//!    samples, a single distinct size, non-positive times) keeps the
//!    previous fit instead of panicking.
//! 3. **Report** — predicted-vs-measured residuals and parameter drift are
//!    exported through a [`MetricsRegistry`], and [`Calibrator::check_drift`]
//!    answers the question that actually matters: *would the drift flip a
//!    decision?* It re-runs the NCT/CT classification and the Eq. 15 fusion
//!    plan under the refit models and reports every flip — report-only; the
//!    running plan is never mutated mid-run.

use crate::fusion::{self, FactorPipeline, FusionStrategy};
use crate::perf::{AlphaBetaModel, CubicCostModel, ExpInverseModel};
use crate::placement::{self, PlacementStrategy};
use spdkfac_obs::{CollEdge, MetricsRegistry, Phase, Recorder, Span, Table};

/// Which rolling sample window a measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Fused factor / gradient all-reduces: `(elements, seconds)`.
    AllReduce,
    /// Inverse-result broadcasts: `(elements, seconds)`.
    Broadcast,
    /// Matrix inversions / eigendecompositions: `(dimension, seconds)`.
    Inverse,
    /// All-reduces sized in *post-encoding wire bytes*: `(bytes, seconds)`.
    /// Under a compressed wire format the per-element fit conflates codec
    /// choice with link speed; the per-byte fit stays format-independent.
    AllReduceWire,
    /// Wire codec CPU cost: `(elements, codec seconds)`. Zero-duration
    /// samples (the f64 pass-through) are rejected like all others, so this
    /// window only fills under compressed formats.
    Encode,
}

impl SampleKind {
    /// Every kind, in display order.
    pub const ALL: [SampleKind; 5] = [
        SampleKind::AllReduce,
        SampleKind::Broadcast,
        SampleKind::Inverse,
        SampleKind::AllReduceWire,
        SampleKind::Encode,
    ];

    /// Metric-name component (`calib/<name>/...`).
    pub fn name(self) -> &'static str {
        match self {
            SampleKind::AllReduce => "allreduce",
            SampleKind::Broadcast => "broadcast",
            SampleKind::Inverse => "inverse",
            SampleKind::AllReduceWire => "allreduce_wire",
            SampleKind::Encode => "encode",
        }
    }
}

/// A bounded FIFO of `(size, seconds)` measurements.
#[derive(Debug, Clone)]
struct SampleWindow {
    cap: usize,
    samples: Vec<(usize, f64)>,
}

impl SampleWindow {
    fn new(cap: usize) -> Self {
        SampleWindow {
            cap: cap.max(2),
            samples: Vec::new(),
        }
    }

    fn push(&mut self, size: usize, secs: f64) {
        if !secs.is_finite() || secs <= 0.0 {
            return; // fitters require positive, finite times
        }
        if self.samples.len() == self.cap {
            self.samples.remove(0);
        }
        self.samples.push((size, secs));
    }

    fn distinct_sizes(&self) -> usize {
        let mut sizes: Vec<usize> = self.samples.iter().map(|&(s, _)| s).collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes.len()
    }

    /// `true` when a least-squares line through the window is well-posed.
    fn fittable(&self) -> bool {
        self.samples.len() >= 2 && self.distinct_sizes() >= 2
    }
}

/// Fit models from the latest refit, where the windows allowed one.
#[derive(Debug, Clone, Default)]
pub struct RefitModels {
    /// All-reduce α-β line over raw element counts.
    pub allreduce: Option<AlphaBetaModel>,
    /// Broadcast α-β line over raw element counts.
    pub broadcast: Option<AlphaBetaModel>,
    /// `true` when [`RefitModels::broadcast`] was seeded from the all-reduce
    /// fit rather than fit from broadcast samples. All-NCT runs (small
    /// models, no CT tensors) never execute an inverse broadcast, so their
    /// broadcast window stays empty; the all-reduce line is the best
    /// available stand-in for `t_comm` and keeps re-planning well-posed.
    /// A genuine broadcast fit clears the flag.
    pub broadcast_is_prior: bool,
    /// Exponential inversion model over tensor dimensions (Eq. 26).
    pub inverse: Option<ExpInverseModel>,
    /// Cubic inversion model over tensor dimensions (the O(d³) sanity fit).
    pub inverse_cubic: Option<CubicCostModel>,
    /// All-reduce α-β line over post-encoding *wire bytes* (β in s/byte).
    pub allreduce_wire: Option<AlphaBetaModel>,
    /// Codec α-β line over element counts (β in s/element of encode+decode
    /// CPU time). Only fits under lossy/compressed wire formats.
    pub encode: Option<AlphaBetaModel>,
}

impl RefitModels {
    /// Composes the wire-byte fit and the codec fit into an *effective
    /// per-element* all-reduce model for a format moving `bytes_per_elem`
    /// bytes per `f64`: `β_elem = β_byte · bytes_per_elem + β_encode` and
    /// `α = α_wire + α_encode`. This is what Eq. 15 fusion and LBP should
    /// plan with when the wire is compressed — the plain per-element refit
    /// would bake the current format's compression ratio into β and
    /// mispredict any op using a different format. Returns `None` without a
    /// wire-byte fit; a missing codec fit contributes zero cost.
    pub fn wire_effective_allreduce(&self, bytes_per_elem: f64) -> Option<AlphaBetaModel> {
        let wire = self.allreduce_wire.as_ref()?;
        let (enc_alpha, enc_beta) = match &self.encode {
            Some(e) => (e.alpha, e.beta),
            None => (0.0, 0.0),
        };
        Some(AlphaBetaModel::new(
            wire.alpha + enc_alpha,
            wire.beta * bytes_per_elem + enc_beta,
        ))
    }
}

/// One decision flip found by the counterfactual re-plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionFlip {
    /// Tensor `tensor` (of dimension `dim`) changed NCT/CT class.
    NctFlip {
        /// Index into the `dims` slice passed to `check_drift`.
        tensor: usize,
        /// Tensor dimension.
        dim: usize,
        /// `true` when the baseline classified it NCT and the refit CT;
        /// `false` for the opposite direction.
        was_nct: bool,
    },
    /// The Eq. 15 fusion plan changed message count under the refit
    /// communication model.
    FusionFlip {
        /// Messages under the baseline model.
        baseline_messages: usize,
        /// Messages under the refit model.
        refit_messages: usize,
    },
}

/// Report-only outcome of a counterfactual re-plan under refit models.
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// Every decision the drift would flip.
    pub flips: Vec<DecisionFlip>,
    /// Largest NCT dimension under the baseline models, per
    /// [`ExpInverseModel::nct_threshold`].
    pub baseline_nct_threshold: Option<usize>,
    /// Largest NCT dimension under the refit models (None when the refit
    /// models are unavailable or no dimension qualifies).
    pub refit_nct_threshold: Option<usize>,
}

impl DriftReport {
    /// Number of tensors whose NCT/CT class flipped.
    pub fn nct_flips(&self) -> usize {
        self.flips
            .iter()
            .filter(|f| matches!(f, DecisionFlip::NctFlip { .. }))
            .count()
    }

    /// `true` when the fusion plan changed message count.
    pub fn fusion_flipped(&self) -> bool {
        self.flips
            .iter()
            .any(|f| matches!(f, DecisionFlip::FusionFlip { .. }))
    }

    /// `true` when any decision flipped.
    pub fn any(&self) -> bool {
        !self.flips.is_empty()
    }

    /// Human-readable flip listing.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "drift re-plan: {} flip(s); NCT threshold {:?} -> {:?}\n",
            self.flips.len(),
            self.baseline_nct_threshold,
            self.refit_nct_threshold,
        ));
        if self.flips.is_empty() {
            return out;
        }
        let mut t = Table::new(["flip", "detail"]);
        for f in &self.flips {
            match f {
                DecisionFlip::NctFlip {
                    tensor,
                    dim,
                    was_nct,
                } => {
                    let dir = if *was_nct { "NCT -> CT" } else { "CT -> NCT" };
                    t.push_row([
                        "nct".to_string(),
                        format!("tensor {tensor} (d={dim}) {dir}"),
                    ]);
                }
                DecisionFlip::FusionFlip {
                    baseline_messages,
                    refit_messages,
                } => {
                    t.push_row([
                        "fusion".to_string(),
                        format!("{baseline_messages} -> {refit_messages} messages"),
                    ]);
                }
            }
        }
        out.push_str(&t.render_text());
        out
    }
}

/// Streams measured span durations into rolling model refits and flags
/// decision-flipping drift. See the module docs for the pipeline.
#[derive(Debug, Clone)]
pub struct Calibrator {
    baseline_comp: ExpInverseModel,
    baseline_comm: AlphaBetaModel,
    allreduce: SampleWindow,
    broadcast: SampleWindow,
    inverse: SampleWindow,
    allreduce_wire: SampleWindow,
    encode: SampleWindow,
    refit: RefitModels,
}

/// Default rolling-window capacity (samples per kind).
pub const DEFAULT_WINDOW: usize = 512;

impl Calibrator {
    /// Creates a calibrator around the baseline models a trainer planned
    /// with (`DistributedConfig::{comp_model, comm_model}`).
    pub fn new(baseline_comp: ExpInverseModel, baseline_comm: AlphaBetaModel) -> Self {
        Self::with_window(baseline_comp, baseline_comm, DEFAULT_WINDOW)
    }

    /// As [`Calibrator::new`] with an explicit rolling-window capacity.
    pub fn with_window(
        baseline_comp: ExpInverseModel,
        baseline_comm: AlphaBetaModel,
        window: usize,
    ) -> Self {
        Calibrator {
            baseline_comp,
            baseline_comm,
            allreduce: SampleWindow::new(window),
            broadcast: SampleWindow::new(window),
            inverse: SampleWindow::new(window),
            allreduce_wire: SampleWindow::new(window),
            encode: SampleWindow::new(window),
            refit: RefitModels::default(),
        }
    }

    /// Adds one measurement directly.
    pub fn push(&mut self, kind: SampleKind, size: usize, secs: f64) {
        match kind {
            SampleKind::AllReduce => self.allreduce.push(size, secs),
            SampleKind::Broadcast => self.broadcast.push(size, secs),
            SampleKind::Inverse => self.inverse.push(size, secs),
            SampleKind::AllReduceWire => self.allreduce_wire.push(size, secs),
            SampleKind::Encode => self.encode.push(size, secs),
        }
    }

    /// Number of samples currently held for `kind`.
    pub fn len(&self, kind: SampleKind) -> usize {
        match kind {
            SampleKind::AllReduce => self.allreduce.samples.len(),
            SampleKind::Broadcast => self.broadcast.samples.len(),
            SampleKind::Inverse => self.inverse.samples.len(),
            SampleKind::AllReduceWire => self.allreduce_wire.samples.len(),
            SampleKind::Encode => self.encode.samples.len(),
        }
    }

    /// `true` when no samples have been ingested at all.
    pub fn is_empty(&self) -> bool {
        SampleKind::ALL.iter().all(|&k| self.len(k) == 0)
    }

    /// Streams every sized span in `spans` into the matching window and
    /// returns the number of samples ingested. Spans are classified by
    /// their [`spdkfac_obs::SpanMeta`]: collective edges `Join` → all-reduce
    /// and `FanOut` → broadcast (sized in elements), and `InverseComp`
    /// compute spans → inversions (sized in tensor dimension). Spans
    /// without a size are skipped — they carry no calibration signal.
    pub fn ingest_spans(&mut self, spans: &[Span]) -> usize {
        let mut n = 0usize;
        for s in spans {
            let Some(size) = s.meta.size else { continue };
            let secs = s.end - s.start;
            let kind = match s.meta.edge {
                Some(CollEdge::Join) => Some(SampleKind::AllReduce),
                Some(CollEdge::FanOut { .. }) => Some(SampleKind::Broadcast),
                Some(CollEdge::FanIn { .. }) => None,
                None if s.phase == Phase::InverseComp => Some(SampleKind::Inverse),
                None => None,
            };
            if let Some(k) = kind {
                if secs.is_finite() && secs > 0.0 {
                    self.push(k, size, secs);
                    n += 1;
                }
                // Wire-aware side channels: all-reduce spans re-sampled in
                // post-encoding bytes, and the codec CPU cost in elements.
                // Both come from the comm thread's `OpCodecStats` via the
                // span meta; the f64 pass-through yields zero codec seconds,
                // which the window rejects at the door.
                if k == SampleKind::AllReduce && secs.is_finite() && secs > 0.0 {
                    if let Some(wb) = s.meta.wire_bytes {
                        self.push(SampleKind::AllReduceWire, wb as usize, secs);
                        n += 1;
                    }
                    if let Some(cs) = s.meta.codec_secs {
                        if cs.is_finite() && cs > 0.0 {
                            self.push(SampleKind::Encode, size, cs);
                            n += 1;
                        }
                    }
                }
            }
        }
        n
    }

    /// [`Calibrator::ingest_spans`] over everything a recorder holds.
    pub fn ingest_recorder(&mut self, rec: &Recorder) -> usize {
        self.ingest_spans(&rec.spans())
    }

    /// Re-fits every window that is currently well-posed; windows that are
    /// not keep their previous fit. Returns the refreshed models.
    ///
    /// Broadcast cold-start: when the broadcast window cannot support a fit
    /// (all-NCT runs never broadcast inverse results) but an all-reduce fit
    /// exists, the broadcast model is seeded from the all-reduce line as a
    /// prior — both are α-β collectives over the same wire — and
    /// [`RefitModels::broadcast_is_prior`] is set. A later genuine
    /// broadcast fit replaces the prior and clears the flag.
    pub fn refit(&mut self) -> &RefitModels {
        if self.allreduce.fittable() {
            self.refit.allreduce = Some(AlphaBetaModel::fit(&self.allreduce.samples));
        }
        if self.broadcast.fittable() {
            self.refit.broadcast = Some(AlphaBetaModel::fit(&self.broadcast.samples));
            self.refit.broadcast_is_prior = false;
        } else if self.refit.broadcast.is_none() || self.refit.broadcast_is_prior {
            if let Some(ar) = self.refit.allreduce {
                self.refit.broadcast = Some(ar);
                self.refit.broadcast_is_prior = true;
            }
        }
        if self.inverse.fittable() {
            self.refit.inverse = Some(ExpInverseModel::fit(&self.inverse.samples));
            self.refit.inverse_cubic = Some(CubicCostModel::fit(&self.inverse.samples));
        }
        if self.allreduce_wire.fittable() {
            self.refit.allreduce_wire = Some(AlphaBetaModel::fit(&self.allreduce_wire.samples));
        }
        if self.encode.fittable() {
            self.refit.encode = Some(AlphaBetaModel::fit(&self.encode.samples));
        }
        &self.refit
    }

    /// The latest refit models (possibly all `None` before any refit).
    pub fn models(&self) -> &RefitModels {
        &self.refit
    }

    /// The baseline models the calibrator compares against.
    pub fn baselines(&self) -> (&ExpInverseModel, &AlphaBetaModel) {
        (&self.baseline_comp, &self.baseline_comm)
    }

    /// Exports calibration health to `m`:
    ///
    /// - `calib/<kind>/samples` — gauge, current window fill;
    /// - `calib/<kind>/residual` — gauge, mean relative error of the
    ///   *baseline* model on the window (`|pred − meas| / meas`);
    /// - `calib/<kind>/residual_refit` — gauge, same for the refit model;
    /// - `calib/<kind>/drift` — histogram of per-sample baseline relative
    ///   errors (the drift distribution, not just its mean);
    /// - `calib/comm/alpha_ratio`, `calib/comm/beta_ratio` — gauges, refit
    ///   all-reduce parameters relative to baseline (1.0 = no drift);
    /// - `calib/inverse/alpha_ratio`, `calib/inverse/beta_delta` — gauges,
    ///   refit inversion-model drift (β is an exponent, so its *difference*
    ///   is reported).
    pub fn publish_metrics(&self, m: &MetricsRegistry) {
        let kinds = [
            (SampleKind::AllReduce, &self.allreduce),
            (SampleKind::Broadcast, &self.broadcast),
            (SampleKind::Inverse, &self.inverse),
            (SampleKind::AllReduceWire, &self.allreduce_wire),
            (SampleKind::Encode, &self.encode),
        ];
        for (kind, win) in kinds {
            let name = kind.name();
            m.gauge(&format!("calib/{name}/samples"))
                .set(win.samples.len() as f64);
            // The baseline comm model is per *element*; wire samples are in
            // bytes (8 B/element under the baseline's f64 assumption), and
            // codec cost has no baseline at all (the baseline plans as if
            // encoding were free).
            let baseline_pred = |size: usize| -> Option<f64> {
                match kind {
                    SampleKind::AllReduce => Some(self.baseline_comm.time(size)),
                    SampleKind::Broadcast => Some(self.baseline_comm.time(size)),
                    SampleKind::Inverse => Some(self.baseline_comp.time(size)),
                    SampleKind::AllReduceWire => Some(self.baseline_comm.time(size / 8)),
                    SampleKind::Encode => None,
                }
            };
            let refit_pred = |size: usize| -> Option<f64> {
                match kind {
                    SampleKind::AllReduce => self.refit.allreduce.as_ref().map(|f| f.time(size)),
                    SampleKind::Broadcast => self.refit.broadcast.as_ref().map(|f| f.time(size)),
                    SampleKind::Inverse => self.refit.inverse.as_ref().map(|f| f.time(size)),
                    SampleKind::AllReduceWire => {
                        self.refit.allreduce_wire.as_ref().map(|f| f.time(size))
                    }
                    SampleKind::Encode => self.refit.encode.as_ref().map(|f| f.time(size)),
                }
            };
            if !win.samples.is_empty() {
                let drift_hist = m.histogram(&format!("calib/{name}/drift"));
                let mut base_sum = 0.0;
                let mut base_n = 0usize;
                let mut refit_sum = 0.0;
                let mut refit_n = 0usize;
                for &(size, secs) in &win.samples {
                    if let Some(p) = baseline_pred(size) {
                        let rel = (p - secs).abs() / secs;
                        base_sum += rel;
                        base_n += 1;
                        drift_hist.observe(rel);
                    }
                    if let Some(p) = refit_pred(size) {
                        refit_sum += (p - secs).abs() / secs;
                        refit_n += 1;
                    }
                }
                if base_n > 0 {
                    m.gauge(&format!("calib/{name}/residual"))
                        .set(base_sum / base_n as f64);
                }
                if refit_n > 0 {
                    m.gauge(&format!("calib/{name}/residual_refit"))
                        .set(refit_sum / refit_n as f64);
                }
            }
        }
        if let Some(ar) = &self.refit.allreduce {
            m.gauge("calib/comm/alpha_ratio")
                .set(ar.alpha / self.baseline_comm.alpha);
            m.gauge("calib/comm/beta_ratio")
                .set(ar.beta / self.baseline_comm.beta);
        }
        if self.refit.broadcast.is_some() {
            m.gauge("calib/broadcast/prior")
                .set(if self.refit.broadcast_is_prior {
                    1.0
                } else {
                    0.0
                });
        }
        if let Some(inv) = &self.refit.inverse {
            m.gauge("calib/inverse/alpha_ratio")
                .set(inv.alpha / self.baseline_comp.alpha);
            m.gauge("calib/inverse/beta_delta")
                .set(inv.beta - self.baseline_comp.beta);
        }
    }

    /// Counterfactual re-plan: would the refit models decide differently?
    ///
    /// Re-runs LBP's NCT/CT classification over `dims` on `world` GPUs and,
    /// when `pipeline` is given, the Eq. 15 fusion plan, once with the
    /// baseline models and once with the refit models. The broadcast refit
    /// stands in for the communication side of the NCT test (that test
    /// compares inversion vs broadcast, Fig. 11); the all-reduce refit
    /// drives the fusion re-plan. Missing refits fall back to the baseline
    /// for that role, so a calibrator that only saw inversion samples still
    /// reports inversion-driven flips.
    ///
    /// Report-only: nothing about the running trainer is changed.
    pub fn check_drift(
        &self,
        dims: &[usize],
        world: usize,
        pipeline: Option<&FactorPipeline>,
    ) -> DriftReport {
        let refit_comp = self.refit.inverse.as_ref().unwrap_or(&self.baseline_comp);
        let refit_bcast = self.refit.broadcast.as_ref().unwrap_or(&self.baseline_comm);
        let refit_ar = self.refit.allreduce.as_ref().unwrap_or(&self.baseline_comm);

        let mut report = DriftReport::default();
        let max_d = dims.iter().copied().max().unwrap_or(0).max(1);
        report.baseline_nct_threshold =
            self.baseline_comp.nct_threshold(&self.baseline_comm, max_d);
        report.refit_nct_threshold = refit_comp.nct_threshold(refit_bcast, max_d);

        if !dims.is_empty() && world > 0 {
            let strategy = PlacementStrategy::default();
            let base = placement::place(
                dims,
                world,
                &self.baseline_comp,
                &self.baseline_comm,
                strategy,
            );
            let refit = placement::place(dims, world, refit_comp, refit_bcast, strategy);
            for (i, &d) in dims.iter().enumerate() {
                let was = base.is_nct(i);
                if was != refit.is_nct(i) {
                    report.flips.push(DecisionFlip::NctFlip {
                        tensor: i,
                        dim: d,
                        was_nct: was,
                    });
                }
            }
        }

        if let Some(p) = pipeline {
            let base = fusion::plan(p, &self.baseline_comm, FusionStrategy::Optimal);
            let refit = fusion::plan(p, refit_ar, FusionStrategy::Optimal);
            if base.num_messages() != refit.num_messages() {
                report.flips.push(DecisionFlip::FusionFlip {
                    baseline_messages: base.num_messages(),
                    refit_messages: refit.num_messages(),
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_obs::SpanMeta;
    use std::borrow::Cow;

    fn comm() -> AlphaBetaModel {
        AlphaBetaModel::new(2e-4, 2e-9)
    }

    fn comp() -> ExpInverseModel {
        ExpInverseModel::new(5e-5, 2e-3)
    }

    fn span(phase: Phase, edge: Option<CollEdge>, size: usize, start: f64, end: f64) -> Span {
        Span {
            track: 0,
            phase,
            label: Cow::Borrowed(""),
            start,
            end,
            meta: SpanMeta {
                edge,
                seq: None,
                size: Some(size),
                ..SpanMeta::default()
            },
        }
    }

    #[test]
    fn ingest_routes_by_meta() {
        let mut c = Calibrator::new(comp(), comm());
        let spans = vec![
            span(Phase::FactorComm, Some(CollEdge::Join), 100, 0.0, 0.1),
            span(
                Phase::InverseComm,
                Some(CollEdge::FanOut { root: 0 }),
                50,
                0.1,
                0.2,
            ),
            span(Phase::InverseComp, None, 32, 0.2, 0.3),
            // unsized and FanIn spans carry no calibration signal
            Span {
                track: 0,
                phase: Phase::FfBp,
                label: Cow::Borrowed(""),
                start: 0.0,
                end: 1.0,
                meta: SpanMeta::default(),
            },
            span(
                Phase::FactorComm,
                Some(CollEdge::FanIn { root: 0 }),
                9,
                0.3,
                0.4,
            ),
        ];
        assert_eq!(c.ingest_spans(&spans), 3);
        assert_eq!(c.len(SampleKind::AllReduce), 1);
        assert_eq!(c.len(SampleKind::Broadcast), 1);
        assert_eq!(c.len(SampleKind::Inverse), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn refit_recovers_planted_models() {
        let mut c = Calibrator::new(comp(), comm());
        let true_comm = AlphaBetaModel::new(1e-3, 5e-8);
        for m in [64usize, 256, 1024, 4096, 16384] {
            c.push(SampleKind::AllReduce, m, true_comm.time(m));
        }
        let true_comp = ExpInverseModel::new(2e-4, 1.5e-3);
        for d in [32usize, 128, 512, 1024] {
            c.push(SampleKind::Inverse, d, true_comp.time(d));
        }
        let models = c.refit();
        let ar = models.allreduce.as_ref().expect("allreduce fit");
        assert!((ar.alpha - true_comm.alpha).abs() / true_comm.alpha < 1e-6);
        assert!((ar.beta - true_comm.beta).abs() / true_comm.beta < 1e-6);
        let inv = models.inverse.as_ref().expect("inverse fit");
        assert!((inv.alpha - true_comp.alpha).abs() / true_comp.alpha < 1e-6);
        assert!((inv.beta - true_comp.beta).abs() < 1e-9);
        assert!(models.inverse_cubic.is_some());
        // No broadcast samples: the all-reduce fit stands in as a prior.
        let bc = models.broadcast.as_ref().expect("broadcast prior seeded");
        assert!(models.broadcast_is_prior);
        assert!((bc.alpha - ar.alpha).abs() < 1e-18);
        assert!((bc.beta - ar.beta).abs() < 1e-18);
    }

    #[test]
    fn broadcast_prior_yields_to_genuine_fit() {
        let mut c = Calibrator::new(comp(), comm());
        let true_ar = AlphaBetaModel::new(1e-3, 5e-8);
        for m in [64usize, 1024, 16384] {
            c.push(SampleKind::AllReduce, m, true_ar.time(m));
        }
        c.refit();
        assert!(c.models().broadcast_is_prior);
        // Real broadcast samples arrive (e.g. drift made some tensors CT):
        // the genuine fit replaces the prior.
        let true_bc = AlphaBetaModel::new(3e-3, 9e-8);
        for m in [128usize, 2048, 32768] {
            c.push(SampleKind::Broadcast, m, true_bc.time(m));
        }
        let models = c.refit();
        assert!(!models.broadcast_is_prior);
        let bc = models.broadcast.as_ref().expect("broadcast fit");
        assert!((bc.alpha - true_bc.alpha).abs() / true_bc.alpha < 1e-6);
        assert!((bc.beta - true_bc.beta).abs() / true_bc.beta < 1e-6);
    }

    #[test]
    fn degenerate_windows_never_panic() {
        let mut c = Calibrator::new(comp(), comm());
        // Zero samples, then one sample, then many samples of ONE size:
        // all three are un-fittable and must be skipped, not panic.
        c.refit();
        c.push(SampleKind::AllReduce, 100, 0.5);
        c.refit();
        for _ in 0..10 {
            c.push(SampleKind::AllReduce, 100, 0.5);
        }
        c.refit();
        assert!(c.models().allreduce.is_none());
        // Non-positive and non-finite durations are rejected at the door.
        c.push(SampleKind::Inverse, 64, 0.0);
        c.push(SampleKind::Inverse, 64, -1.0);
        c.push(SampleKind::Inverse, 64, f64::NAN);
        assert_eq!(c.len(SampleKind::Inverse), 0);
    }

    #[test]
    fn window_is_bounded() {
        let mut c = Calibrator::with_window(comp(), comm(), 4);
        for i in 0..20 {
            c.push(SampleKind::Broadcast, 10 + i, 0.1);
        }
        assert_eq!(c.len(SampleKind::Broadcast), 4);
    }

    #[test]
    fn metrics_export_residuals_and_drift() {
        let mut c = Calibrator::new(comp(), comm());
        let true_comm = AlphaBetaModel::new(4e-4, 4e-9); // 2x the baseline
        for m in [100usize, 1000, 10000] {
            c.push(SampleKind::AllReduce, m, true_comm.time(m));
        }
        c.refit();
        let reg = MetricsRegistry::new();
        c.publish_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["calib/allreduce/samples"], 3.0);
        // Baseline is 2x off -> mean relative error ~0.5; refit is exact.
        let base = snap.gauges["calib/allreduce/residual"];
        assert!((base - 0.5).abs() < 1e-6, "residual {base}");
        assert!(snap.gauges["calib/allreduce/residual_refit"] < 1e-9);
        assert!((snap.gauges["calib/comm/alpha_ratio"] - 2.0).abs() < 1e-6);
        assert!((snap.gauges["calib/comm/beta_ratio"] - 2.0).abs() < 1e-6);
        assert_eq!(snap.histograms["calib/allreduce/drift"].count, 3);
    }

    #[test]
    fn well_calibrated_run_flags_nothing() {
        let mut c = Calibrator::new(comp(), comm());
        for d in [16usize, 64, 256, 1024] {
            c.push(SampleKind::Inverse, d, comp().time(d));
            let m = d * (d + 1) / 2;
            c.push(SampleKind::Broadcast, m, comm().time(m));
            c.push(SampleKind::AllReduce, m, comm().time(m));
        }
        c.refit();
        let dims = vec![16usize, 64, 256, 1024];
        let pipe = FactorPipeline::new(vec![0.0, 0.1, 0.2, 0.3], vec![136, 2080, 32896, 524800])
            .expect("valid pipeline");
        let report = c.check_drift(&dims, 4, Some(&pipe));
        assert!(!report.any(), "flips: {:?}", report.flips);
        assert_eq!(report.baseline_nct_threshold, report.refit_nct_threshold);
    }

    #[test]
    fn miscalibrated_inverse_model_flips_nct() {
        // The baseline thinks inversion is ~1e9x cheaper than it measures:
        // everything the baseline calls NCT should flip to CT on refit.
        let mut c = Calibrator::new(
            ExpInverseModel::new(comp().alpha * 1e-9, comp().beta),
            comm(),
        );
        for d in [16usize, 64, 256, 1024] {
            c.push(SampleKind::Inverse, d, comp().time(d) * 1e6);
        }
        c.refit();
        let dims = vec![16usize, 64, 256];
        let report = c.check_drift(&dims, 2, None);
        assert!(report.nct_flips() >= 1, "report: {report:?}");
        assert!(report.any());
        let text = report.render_text();
        assert!(text.contains("NCT -> CT"), "text was:\n{text}");
    }

    fn wire_span(size: usize, wire_bytes: u64, codec_secs: f64, start: f64, end: f64) -> Span {
        Span {
            track: 0,
            phase: Phase::GradComm,
            label: Cow::Borrowed(""),
            start,
            end,
            meta: SpanMeta {
                edge: Some(CollEdge::Join),
                size: Some(size),
                wire_bytes: Some(wire_bytes),
                codec_secs: Some(codec_secs),
                ..SpanMeta::default()
            },
        }
    }

    #[test]
    fn wire_meta_feeds_byte_and_codec_windows() {
        let mut c = Calibrator::new(comp(), comm());
        // f16 wire: 2 bytes/element, codec cost 1 ns/element.
        for (i, elems) in [1000usize, 4000, 16000].iter().enumerate() {
            let t = 0.1 * i as f64;
            c.ingest_spans(&[wire_span(
                *elems,
                2 * *elems as u64,
                1e-9 * *elems as f64,
                t,
                t + 1e-4 + 2e-9 * 2.0 * *elems as f64,
            )]);
        }
        assert_eq!(c.len(SampleKind::AllReduce), 3);
        assert_eq!(c.len(SampleKind::AllReduceWire), 3);
        assert_eq!(c.len(SampleKind::Encode), 3);
        let models = c.refit();
        // The wire fit is per byte: β recovers 2e-9 s/B exactly.
        let wire = models.allreduce_wire.as_ref().expect("wire fit");
        assert!((wire.beta - 2e-9).abs() / 2e-9 < 1e-6, "beta {}", wire.beta);
        let enc = models.encode.as_ref().expect("encode fit");
        assert!((enc.beta - 1e-9).abs() / 1e-9 < 1e-6, "beta {}", enc.beta);
        // Effective per-element model at 2 B/element folds codec cost in.
        let eff = models.wire_effective_allreduce(2.0).expect("effective");
        assert!((eff.beta - (2e-9 * 2.0 + 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn f64_passthrough_leaves_codec_window_empty() {
        let mut c = Calibrator::new(comp(), comm());
        // f64 wire: 8 B/element, zero codec seconds (rejected at the door).
        c.ingest_spans(&[wire_span(1000, 8000, 0.0, 0.0, 0.01)]);
        assert_eq!(c.len(SampleKind::AllReduce), 1);
        assert_eq!(c.len(SampleKind::AllReduceWire), 1);
        assert_eq!(c.len(SampleKind::Encode), 0);
        assert!(c.models().wire_effective_allreduce(8.0).is_none());
    }

    #[test]
    fn fusion_flip_is_detected() {
        // Baseline α is tiny (no fusion pays off); measured α is huge
        // (everything should fuse) -> message count must drop.
        let baseline = AlphaBetaModel::new(1e-9, 1e-9);
        let mut c = Calibrator::new(comp(), baseline);
        let measured = AlphaBetaModel::new(10.0, 1e-9);
        for m in [100usize, 1000, 10000, 100000] {
            c.push(SampleKind::AllReduce, m, measured.time(m));
        }
        c.refit();
        let pipe = FactorPipeline::new(vec![0.0, 1.0, 2.0, 3.0], vec![10, 10, 10, 10])
            .expect("valid pipeline");
        let report = c.check_drift(&[], 1, Some(&pipe));
        assert!(report.fusion_flipped(), "report: {report:?}");
        assert!(report.render_text().contains("messages"));
    }
}
