//! Pipelining Kronecker-factor communication with dynamic tensor fusion
//! (§IV-A).
//!
//! Factors become ready one at a time as the forward (for `A`) or backward
//! (for `G`) pass progresses. Each factor could be all-reduced immediately
//! (layer-wise), but small messages waste the startup latency `α_ar`
//! (Eq. 14). The paper's rule (Eq. 15) merges factor `l+1` into factor `l`'s
//! message exactly when `l+1` becomes ready before `l`'s message could have
//! effectively started — so merging costs nothing and saves one startup.
//!
//! This module computes **fusion plans** (which consecutive factors share an
//! all-reduce) for the four strategies of Fig. 10 and simulates the
//! resulting communication timeline to obtain non-overlapped communication
//! time.

use crate::error::KfacError;
use crate::perf::AlphaBetaModel;

/// How factors are grouped into all-reduce messages (the Fig. 10 variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusionStrategy {
    /// All factors of a pass in a single message, issued when the last one
    /// is ready (the overlap style of Pauloski et al. / Ueno et al. —
    /// "Naive" in Fig. 10).
    Naive,
    /// One message per factor, issued as soon as it is ready
    /// ("LW w/o TF").
    LayerWise,
    /// Layer-wise with Horovod-style threshold fusion ("LW w/ TTF"):
    /// factors that become ready within one coordination cycle of the
    /// bucket's first member are fused, up to the fusion-buffer capacity
    /// (Horovod defaults: 64 MB ≙ 16 M fp32 elements, 5 ms cycle).
    Threshold {
        /// Fusion-buffer capacity in elements.
        elems: usize,
        /// Coordination-cycle length in seconds.
        cycle_s: f64,
    },
    /// The paper's optimal dynamic fusion driven by Eq. 15 ("SP w/ OTF").
    Optimal,
}

/// A pipeline of factors in communication order: factor `i` becomes ready
/// at `ready[i]` (seconds into the pass) and occupies `sizes[i]` packed
/// elements on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorPipeline {
    /// Monotonically non-decreasing ready times.
    pub ready: Vec<f64>,
    /// Packed element count per factor.
    pub sizes: Vec<usize>,
}

impl FactorPipeline {
    /// Creates a pipeline after validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns [`KfacError::InvalidPlanInput`] when lengths mismatch or
    /// ready times decrease.
    pub fn new(ready: Vec<f64>, sizes: Vec<usize>) -> Result<Self, KfacError> {
        if ready.len() != sizes.len() {
            return Err(KfacError::InvalidPlanInput {
                reason: format!(
                    "ready/sizes length mismatch: {} vs {}",
                    ready.len(),
                    sizes.len()
                ),
            });
        }
        if ready.windows(2).any(|w| w[1] < w[0]) {
            return Err(KfacError::InvalidPlanInput {
                reason: "ready times must be non-decreasing".into(),
            });
        }
        Ok(FactorPipeline { ready, sizes })
    }

    /// Number of factors.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// `true` when the pipeline has no factors.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }
}

/// A fusion plan: consecutive factor indices grouped into messages, in
/// issue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    buckets: Vec<Vec<usize>>,
}

impl FusionPlan {
    /// The buckets, each a run of consecutive factor indices.
    pub fn buckets(&self) -> &[Vec<usize>] {
        &self.buckets
    }

    /// Number of messages the plan issues.
    pub fn num_messages(&self) -> usize {
        self.buckets.len()
    }

    /// Checks that the plan is a partition of `0..n` into consecutive runs.
    pub fn is_valid_partition(&self, n: usize) -> bool {
        let mut expect = 0usize;
        for b in &self.buckets {
            if b.is_empty() {
                return false;
            }
            for &i in b {
                if i != expect {
                    return false;
                }
                expect += 1;
            }
        }
        expect == n
    }
}

/// Computes the fusion plan for `pipeline` under `strategy`.
///
/// The `Optimal` strategy implements Eq. 15: walking the factors in ready
/// order, factor `l+1` is merged into the current bucket iff it becomes
/// ready before the bucket's message could effectively start
/// (`ready[l+1] < bucket_start + α_ar`), where the bucket start accounts for
/// the network still being busy with the previous message.
pub fn plan(
    pipeline: &FactorPipeline,
    comm: &AlphaBetaModel,
    strategy: FusionStrategy,
) -> FusionPlan {
    let n = pipeline.len();
    if n == 0 {
        return FusionPlan { buckets: vec![] };
    }
    let buckets = match strategy {
        FusionStrategy::Naive => vec![(0..n).collect()],
        FusionStrategy::LayerWise => (0..n).map(|i| vec![i]).collect(),
        FusionStrategy::Threshold { elems, cycle_s } => {
            let mut out: Vec<Vec<usize>> = Vec::new();
            let mut cur = vec![0usize];
            let mut cur_elems = pipeline.sizes[0];
            let mut cycle_start = pipeline.ready[0];
            for i in 1..n {
                let fits = cur_elems + pipeline.sizes[i] <= elems;
                let same_cycle = pipeline.ready[i] - cycle_start <= cycle_s;
                if fits && same_cycle {
                    cur.push(i);
                    cur_elems += pipeline.sizes[i];
                } else {
                    out.push(std::mem::take(&mut cur));
                    cur = vec![i];
                    cur_elems = pipeline.sizes[i];
                    cycle_start = pipeline.ready[i];
                }
            }
            out.push(cur);
            out
        }
        FusionStrategy::Optimal => optimal_buckets(pipeline, comm),
    };
    FusionPlan { buckets }
}

/// The Eq. 15 greedy walk: merge factor `i` into the current bucket iff it
/// becomes ready within the startup window of the bucket's message
/// (accounting for the network still draining the previous message).
fn greedy_eq15_buckets(pipeline: &FactorPipeline, comm: &AlphaBetaModel) -> Vec<Vec<usize>> {
    let n = pipeline.len();
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut cur = vec![0usize];
    let mut net_free = 0.0f64;
    for i in 1..n {
        let bucket_ready = pipeline.ready[*cur.last().expect("bucket non-empty")];
        let bucket_start = bucket_ready.max(net_free);
        if pipeline.ready[i] < bucket_start + comm.alpha {
            cur.push(i);
        } else {
            let elems: usize = cur.iter().map(|&j| pipeline.sizes[j]).sum();
            net_free = bucket_start + comm.time(elems);
            out.push(std::mem::take(&mut cur));
            cur = vec![i];
        }
    }
    out.push(cur);
    out
}

/// Optimal fusion: the Eq. 15 greedy solution refined by merge/split local
/// search on the analytic pipeline objective (finish time, then message
/// count), seeded with every baseline partition so the result never loses to
/// them on the model. MG-WFBP proves the greedy rule optimal under its
/// assumptions; the refinement recovers optimality when ready-time gaps and
/// message sizes interact (e.g. a huge late factor behind a busy network).
fn optimal_buckets(pipeline: &FactorPipeline, comm: &AlphaBetaModel) -> Vec<Vec<usize>> {
    let n = pipeline.len();
    let score = |buckets: &[Vec<usize>]| -> (f64, usize) {
        let plan = FusionPlan {
            buckets: buckets.to_vec(),
        };
        let out = simulate(pipeline, &plan, comm, 0.0);
        (out.finish, buckets.len())
    };
    let better = |a: (f64, usize), b: (f64, usize)| -> bool {
        a.0 < b.0 - 1e-12 || (a.0 < b.0 + 1e-12 && a.1 < b.1)
    };

    let mut seeds: Vec<Vec<Vec<usize>>> = vec![
        greedy_eq15_buckets(pipeline, comm),
        vec![(0..n).collect()],
        (0..n).map(|i| vec![i]).collect(),
    ];
    // A few coarse time-window seeds.
    for window in [2.0 * comm.alpha, 8.0 * comm.alpha, 32.0 * comm.alpha] {
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut cur = vec![0usize];
        let mut start = pipeline.ready[0];
        for i in 1..n {
            if pipeline.ready[i] - start <= window {
                cur.push(i);
            } else {
                out.push(std::mem::take(&mut cur));
                cur = vec![i];
                start = pipeline.ready[i];
            }
        }
        out.push(cur);
        seeds.push(out);
    }

    // Candidate bucketing with its `(modelled time, message count)` score.
    type Scored = (Vec<Vec<usize>>, (f64, usize));
    let mut best: Option<Scored> = None;
    for seed in seeds {
        let mut cur = seed;
        let mut cur_score = score(&cur);
        // Hill-climb: merge adjacent buckets or split a bucket while it
        // improves the objective.
        loop {
            let mut improved = false;
            // Merges.
            for i in 0..cur.len().saturating_sub(1) {
                let mut cand = cur.clone();
                let tail = cand.remove(i + 1);
                cand[i].extend(tail);
                let s = score(&cand);
                if better(s, cur_score) {
                    cur = cand;
                    cur_score = s;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            // Splits.
            'outer: for i in 0..cur.len() {
                if cur[i].len() < 2 {
                    continue;
                }
                for cut in 1..cur[i].len() {
                    let mut cand = cur.clone();
                    let right = cand[i].split_off(cut);
                    cand.insert(i + 1, right);
                    let s = score(&cand);
                    if better(s, cur_score) {
                        cur = cand;
                        cur_score = s;
                        improved = true;
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        match &best {
            Some((_, bs)) if !better(cur_score, *bs) => {}
            _ => best = Some((cur, cur_score)),
        }
    }
    best.expect("at least one seed").0
}

/// Runtime companion of a [`FusionPlan`]: the §V-A `TensorFusionController`.
///
/// Factors are offered in pipeline order; the controller buffers them and
/// returns a flushed bucket (the member indices and their payload sizes)
/// exactly when the plan's bucket is complete — the caller then issues one
/// fused all-reduce for it.
#[derive(Debug, Clone)]
pub struct FusionController {
    plan: FusionPlan,
    bucket_idx: usize,
    pending: Vec<usize>,
}

impl FusionController {
    /// Creates a controller over `plan`.
    pub fn new(plan: FusionPlan) -> Self {
        FusionController {
            plan,
            bucket_idx: 0,
            pending: Vec::new(),
        }
    }

    /// Offers the next factor (pipeline position `pos`); returns the
    /// complete bucket's positions when this factor fills it.
    ///
    /// # Panics
    ///
    /// Panics if positions are offered out of pipeline order or beyond the
    /// plan.
    pub fn offer(&mut self, pos: usize) -> Option<Vec<usize>> {
        let bucket = self
            .plan
            .buckets()
            .get(self.bucket_idx)
            .unwrap_or_else(|| panic!("factor {pos} offered beyond the plan"));
        let expect = bucket[self.pending.len()];
        assert_eq!(
            pos, expect,
            "factor {pos} offered out of order (expected {expect})"
        );
        self.pending.push(pos);
        if self.pending.len() == bucket.len() {
            self.bucket_idx += 1;
            Some(std::mem::take(&mut self.pending))
        } else {
            None
        }
    }

    /// `true` when every planned bucket has been flushed.
    pub fn is_drained(&self) -> bool {
        self.bucket_idx == self.plan.buckets().len() && self.pending.is_empty()
    }
}

/// Timeline of one simulated pass: when each message starts/ends and how
/// much communication failed to hide behind compute.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Per-bucket `(start, end)` network occupation, in issue order.
    pub spans: Vec<(f64, f64)>,
    /// Time the last message completes.
    pub finish: f64,
    /// Time the compute pass completes (`ready.last()`).
    pub compute_end: f64,
    /// Communication time not hidden by compute: `max(0, finish − compute_end)`.
    pub non_overlapped: f64,
}

/// Simulates the serialised network executing `plan` over `pipeline`
/// starting with the network free at `net_free_at`.
///
/// Each message starts when its last member factor is ready and the network
/// is free; messages never overlap each other but freely overlap compute —
/// exactly the Horovod single-queue model the trainers and the simulator
/// share (DESIGN.md §4).
pub fn simulate(
    pipeline: &FactorPipeline,
    plan: &FusionPlan,
    comm: &AlphaBetaModel,
    net_free_at: f64,
) -> PipelineOutcome {
    let mut net_free = net_free_at;
    let mut spans = Vec::with_capacity(plan.buckets.len());
    for bucket in &plan.buckets {
        let ready = bucket
            .iter()
            .map(|&i| pipeline.ready[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let start = ready.max(net_free);
        let elems: usize = bucket.iter().map(|&i| pipeline.sizes[i]).sum();
        let end = start + comm.time(elems);
        spans.push((start, end));
        net_free = end;
    }
    let compute_end = pipeline.ready.last().copied().unwrap_or(0.0);
    let finish = spans.last().map(|&(_, e)| e).unwrap_or(net_free_at);
    PipelineOutcome {
        spans,
        finish,
        compute_end,
        non_overlapped: (finish - compute_end).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> AlphaBetaModel {
        AlphaBetaModel::new(0.5, 0.01) // α = 0.5 s, β = 0.01 s/elem (toy units)
    }

    fn pipeline(ready: &[f64], sizes: &[usize]) -> FactorPipeline {
        FactorPipeline::new(ready.to_vec(), sizes.to_vec()).unwrap()
    }

    #[test]
    fn rejects_inconsistent_inputs() {
        assert!(FactorPipeline::new(vec![0.0, 1.0], vec![1]).is_err());
        assert!(FactorPipeline::new(vec![1.0, 0.5], vec![1, 1]).is_err());
    }

    #[test]
    fn layerwise_is_singletons_naive_is_one() {
        let p = pipeline(&[0.0, 1.0, 2.0], &[10, 10, 10]);
        let lw = plan(&p, &comm(), FusionStrategy::LayerWise);
        assert_eq!(lw.num_messages(), 3);
        let nv = plan(&p, &comm(), FusionStrategy::Naive);
        assert_eq!(nv.num_messages(), 1);
        assert!(lw.is_valid_partition(3));
        assert!(nv.is_valid_partition(3));
    }

    #[test]
    fn threshold_splits_at_capacity() {
        let p = pipeline(&[0.0, 0.0, 0.0, 0.0], &[6, 6, 6, 6]);
        let t = plan(
            &p,
            &comm(),
            FusionStrategy::Threshold {
                elems: 12,
                cycle_s: 100.0,
            },
        );
        assert_eq!(t.num_messages(), 2);
        assert_eq!(t.buckets()[0], vec![0, 1]);
        assert_eq!(t.buckets()[1], vec![2, 3]);
    }

    #[test]
    fn optimal_merges_factors_ready_within_startup() {
        // Factors 0 and 1 ready 0.1 s apart with α = 0.5 s ⇒ merged.
        // Factor 2 ready much later ⇒ its own message.
        let p = pipeline(&[0.0, 0.1, 10.0], &[1, 1, 1]);
        let o = plan(&p, &comm(), FusionStrategy::Optimal);
        assert_eq!(o.buckets(), &[vec![0, 1], vec![2]]);
    }

    #[test]
    fn optimal_accounts_for_busy_network() {
        // A huge factor 0 followed by two tiny stragglers: sending factor 0
        // immediately and fusing the stragglers dominates delaying factor 0
        // (the planner must not hold the big message back for them).
        let p = pipeline(&[0.0, 0.2, 1.0], &[1000, 1, 1]);
        let o = plan(&p, &comm(), FusionStrategy::Optimal);
        let out = simulate(&p, &o, &comm(), 0.0);
        for s in [
            FusionStrategy::Naive,
            FusionStrategy::LayerWise,
            FusionStrategy::Threshold {
                elems: 2000,
                cycle_s: 0.5,
            },
        ] {
            let alt = simulate(&p, &plan(&p, &comm(), s), &comm(), 0.0);
            assert!(out.finish <= alt.finish + 1e-9, "{s:?} beat Optimal");
        }
        // The big factor goes out alone; the stragglers share one message.
        assert_eq!(o.buckets()[0], vec![0]);
        assert_eq!(o.num_messages(), 2);
    }

    #[test]
    fn optimal_splits_when_spacing_exceeds_startup() {
        // Tiny factors spaced far apart: the last factor must not wait for a
        // fused mega-message (Naive loses); the planner may still merge the
        // earlier factors when that costs nothing.
        let p = pipeline(&[0.0, 2.0, 4.0], &[1, 1, 1]);
        let o = plan(&p, &comm(), FusionStrategy::Optimal);
        let out = simulate(&p, &o, &comm(), 0.0);
        let lw = simulate(
            &p,
            &plan(&p, &comm(), FusionStrategy::LayerWise),
            &comm(),
            0.0,
        );
        let naive = simulate(&p, &plan(&p, &comm(), FusionStrategy::Naive), &comm(), 0.0);
        assert!(out.finish < naive.finish);
        assert!(out.finish <= lw.finish + 1e-12);
        assert!(o.num_messages() >= 2, "last factor needs its own window");
    }

    #[test]
    fn simulate_serialises_messages() {
        let p = pipeline(&[0.0, 0.0], &[10, 10]);
        let lw = plan(&p, &comm(), FusionStrategy::LayerWise);
        let out = simulate(&p, &lw, &comm(), 0.0);
        assert_eq!(out.spans.len(), 2);
        // Second message starts exactly when the first ends.
        assert!((out.spans[1].0 - out.spans[0].1).abs() < 1e-12);
    }

    #[test]
    fn simulate_respects_ready_times() {
        let p = pipeline(&[0.0, 5.0], &[1, 1]);
        let lw = plan(&p, &comm(), FusionStrategy::LayerWise);
        let out = simulate(&p, &lw, &comm(), 0.0);
        assert!(out.spans[1].0 >= 5.0);
    }

    #[test]
    fn non_overlap_zero_when_comm_fits_inside_compute() {
        let p = pipeline(&[0.0, 100.0], &[1, 1]);
        let lw = plan(&p, &comm(), FusionStrategy::LayerWise);
        let out = simulate(&p, &lw, &comm(), 0.0);
        // First message fully hidden; only the last message sticks out.
        assert!((out.non_overlapped - comm().time(1)).abs() < 1e-12);
    }

    #[test]
    fn optimal_beats_layerwise_on_startup_bound_pipeline() {
        // Many tiny factors arriving back-to-back: layer-wise pays n·α,
        // optimal pays ~1·α.
        let n = 20;
        let ready: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let sizes = vec![1usize; n];
        let p = FactorPipeline::new(ready, sizes).unwrap();
        let c = comm();
        let lw_out = simulate(&p, &plan(&p, &c, FusionStrategy::LayerWise), &c, 0.0);
        let ot_out = simulate(&p, &plan(&p, &c, FusionStrategy::Optimal), &c, 0.0);
        assert!(
            ot_out.finish < lw_out.finish * 0.25,
            "optimal {:.3} vs layerwise {:.3}",
            ot_out.finish,
            lw_out.finish
        );
    }

    #[test]
    fn optimal_beats_naive_on_spread_pipeline() {
        // Large factors arriving far apart: naive waits for the last one
        // before sending anything; optimal hides earlier messages.
        let p = pipeline(&[0.0, 10.0, 20.0], &[500, 500, 500]);
        let c = comm();
        let nv = simulate(&p, &plan(&p, &c, FusionStrategy::Naive), &c, 0.0);
        let ot = simulate(&p, &plan(&p, &c, FusionStrategy::Optimal), &c, 0.0);
        assert!(ot.finish < nv.finish);
        assert!(ot.non_overlapped < nv.non_overlapped);
    }

    #[test]
    fn controller_flushes_on_plan_boundaries() {
        let p = pipeline(&[0.0, 0.1, 10.0], &[1, 1, 1]);
        let pl = plan(&p, &comm(), FusionStrategy::Optimal);
        assert_eq!(pl.buckets(), &[vec![0, 1], vec![2]]);
        let mut ctl = FusionController::new(pl);
        assert_eq!(ctl.offer(0), None);
        assert_eq!(ctl.offer(1), Some(vec![0, 1]));
        assert!(!ctl.is_drained());
        assert_eq!(ctl.offer(2), Some(vec![2]));
        assert!(ctl.is_drained());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn controller_rejects_out_of_order() {
        let p = pipeline(&[0.0, 1.0], &[1, 1]);
        let pl = plan(&p, &comm(), FusionStrategy::LayerWise);
        let mut ctl = FusionController::new(pl);
        let _ = ctl.offer(1);
    }

    #[test]
    fn empty_pipeline_is_fine() {
        let p = FactorPipeline::new(vec![], vec![]).unwrap();
        let pl = plan(&p, &comm(), FusionStrategy::Optimal);
        assert_eq!(pl.num_messages(), 0);
        let out = simulate(&p, &pl, &comm(), 3.0);
        assert_eq!(out.finish, 3.0);
        assert_eq!(out.non_overlapped, 3.0); // nothing computed either
    }
}
