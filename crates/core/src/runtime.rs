//! Adaptive re-planning runtime: barrier-synchronized actuation of
//! calibration drift.
//!
//! SPD-KFAC's two standing decisions — the Eq. 15 fusion plan and the
//! Algorithm 1 LBP inverse placement — are computed from α-β/exponential
//! cost models that [`crate::calibrate`] shows drift at runtime. This
//! module is the control plane that closes the loop *safely*:
//!
//! 1. **Plan store** — the active [`PlanEpoch`] (fusion plans + placement,
//!    versioned by a monotonically increasing `generation`).
//! 2. **Model agreement** — at a synchronized inter-iteration barrier every
//!    rank refits its local [`Calibrator`](crate::calibrate::Calibrator),
//!    encodes the fitted coefficients into a fixed-size vector
//!    ([`encode_models`]), and an averaging all-reduce makes every rank see
//!    the *identical* agreed coefficients ([`decode_models`]). The
//!    all-reduce doubles as the barrier.
//! 3. **Deterministic re-plan** — each rank recomputes the placement and
//!    fusion plans from the agreed models ([`replan`]). Determinism plus
//!    identical inputs means every rank derives the identical candidate
//!    plan with no further coordination.
//! 4. **Atomic swap** — [`ReplanController::consider`] applies the policy
//!    (hysteresis under [`ReplanPolicy::OnDrift`]) and, on a swap,
//!    [`PlanStore::swap`] installs the new epoch and bumps the generation.
//!    The trainer then tags subsequent collectives with the new generation
//!    (`WorkerComm::set_generation`), so the causal analyzer's SPMD
//!    k-th-collective matching stays sound per `(generation, seq)`.
//!
//! **SPMD-safety argument.** A mid-iteration re-plan would change the
//! number and order of collectives on some ranks before others, deadlocking
//! the group. Here every input to the swap decision is rank-identical: the
//! barrier entry condition depends only on the iteration number
//! ([`ReplanController::due`]), the models are agreed by all-reduce, the
//! re-plan is a pure function of the agreed models, and the hysteresis
//! counter advances in lockstep because its input (plan-changed?) is
//! rank-identical. Therefore all ranks swap (or don't) together, and the
//! submission order stays identical on every rank within each generation.

use crate::calibrate::RefitModels;
use crate::fusion::{self, FactorPipeline, FusionPlan, FusionStrategy};
use crate::perf::{AlphaBetaModel, ExpInverseModel};
use crate::placement::{self, Placement, PlacementStrategy};
use spdkfac_obs::MetricsRegistry;

/// One versioned set of standing decisions: what the data plane is running.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEpoch {
    /// Eq. 15 fusion plan for the A-factor (forward-pass) pipeline, when
    /// the trainer pipelines factor communication (SPD).
    pub a_fusion: Option<FusionPlan>,
    /// Fusion plan for the G-factor (backward-pass) pipeline.
    pub g_fusion: Option<FusionPlan>,
    /// Algorithm 1 inverse placement.
    pub placement: Placement,
    /// Epoch version; bumped by every [`PlanStore::swap`].
    pub generation: u64,
}

impl PlanEpoch {
    /// `true` when the standing decisions differ (generation is ignored —
    /// it versions the decisions, it is not one).
    pub fn plan_differs(&self, other: &PlanEpoch) -> bool {
        self.a_fusion != other.a_fusion
            || self.g_fusion != other.g_fusion
            || self.placement != other.placement
    }
}

/// Owner of the active [`PlanEpoch`]. Each rank holds its own store; the
/// agreement protocol (module docs) keeps the contents rank-identical, so a
/// local swap *is* the global swap.
#[derive(Debug, Clone)]
pub struct PlanStore {
    epoch: PlanEpoch,
}

impl PlanStore {
    /// Creates a store with generation-0 decisions.
    pub fn new(
        placement: Placement,
        a_fusion: Option<FusionPlan>,
        g_fusion: Option<FusionPlan>,
    ) -> Self {
        PlanStore {
            epoch: PlanEpoch {
                a_fusion,
                g_fusion,
                placement,
                generation: 0,
            },
        }
    }

    /// The active epoch.
    pub fn current(&self) -> &PlanEpoch {
        &self.epoch
    }

    /// The active generation.
    pub fn generation(&self) -> u64 {
        self.epoch.generation
    }

    /// Replaces the fusion plans without a generation bump — used for the
    /// iteration-0 measurement-driven plan agreement, which installs the
    /// *first* real plan rather than re-planning an existing one.
    pub fn install_fusion(&mut self, a_fusion: Option<FusionPlan>, g_fusion: Option<FusionPlan>) {
        self.epoch.a_fusion = a_fusion;
        self.epoch.g_fusion = g_fusion;
    }

    /// Installs a new epoch and bumps the generation; returns the new
    /// generation. Call only after the agreement barrier (module docs).
    pub fn swap(
        &mut self,
        placement: Placement,
        a_fusion: Option<FusionPlan>,
        g_fusion: Option<FusionPlan>,
    ) -> u64 {
        self.epoch = PlanEpoch {
            a_fusion,
            g_fusion,
            placement,
            generation: self.epoch.generation + 1,
        };
        self.epoch.generation
    }
}

/// When (and how eagerly) the runtime re-plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplanPolicy {
    /// Never re-plan: the seed static-plan behavior.
    #[default]
    Off,
    /// Enter the re-plan barrier after every `n`-th iteration and swap
    /// whenever the agreed models produce a different plan.
    EveryN(usize),
    /// Enter the barrier every `check_every` iterations, but swap only
    /// after the candidate plan has differed from the active one in
    /// `hysteresis` *consecutive* checks — transient drift (one noisy
    /// window) never churns the plan.
    OnDrift {
        /// Barrier cadence in iterations.
        check_every: usize,
        /// Consecutive differing checks required before a swap (≥ 1).
        hysteresis: usize,
    },
}

impl ReplanPolicy {
    /// Barrier cadence: `Some(n)` when the policy enters the re-plan
    /// barrier every `n` iterations.
    pub fn cadence(&self) -> Option<usize> {
        match self {
            ReplanPolicy::Off => None,
            ReplanPolicy::EveryN(n) => Some((*n).max(1)),
            ReplanPolicy::OnDrift { check_every, .. } => Some((*check_every).max(1)),
        }
    }
}

/// Number of `f64`s in the model-agreement vector: five models ×
/// `(count, α, β)`.
pub const AGREEMENT_LEN: usize = 15;

/// Flattens a rank's refit models into the agreement vector.
///
/// Layout per model (all-reduce α-β, broadcast α-β, inverse exp, wire-byte
/// all-reduce α-β, codec α-β): `[has, α·has, β·has]`. Ranks lacking a fit
/// contribute zeros, so after an *averaging* all-reduce the group mean of
/// each coefficient over the ranks that do have a fit is
/// `avg(α·has) / avg(has)` — see [`decode_models`].
pub fn encode_models(models: &RefitModels) -> [f64; AGREEMENT_LEN] {
    let mut v = [0.0f64; AGREEMENT_LEN];
    if let Some(ar) = &models.allreduce {
        v[0] = 1.0;
        v[1] = ar.alpha;
        v[2] = ar.beta;
    }
    if let Some(bc) = &models.broadcast {
        v[3] = 1.0;
        v[4] = bc.alpha;
        v[5] = bc.beta;
    }
    if let Some(inv) = &models.inverse {
        v[6] = 1.0;
        v[7] = inv.alpha;
        v[8] = inv.beta;
    }
    if let Some(w) = &models.allreduce_wire {
        v[9] = 1.0;
        v[10] = w.alpha;
        v[11] = w.beta;
    }
    if let Some(e) = &models.encode {
        v[12] = 1.0;
        v[13] = e.alpha;
        v[14] = e.beta;
    }
    v
}

/// The rank-identical models a re-plan decides from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgreedModels {
    /// Agreed all-reduce α-β line (fusion planning), per element.
    pub allreduce: AlphaBetaModel,
    /// Agreed broadcast α-β line (NCT test / placement).
    pub broadcast: AlphaBetaModel,
    /// Agreed exponential inversion model (NCT test / placement).
    pub inverse: ExpInverseModel,
    /// Agreed all-reduce line over *wire bytes* (β in s/byte); `None` when
    /// no rank fit one (cold start, or spans carried no wire meta).
    pub allreduce_wire: Option<AlphaBetaModel>,
    /// Agreed wire-codec line over elements (encode+decode CPU s/element);
    /// `None` under the f64 pass-through, whose codec cost is zero.
    pub encode: Option<AlphaBetaModel>,
}

impl AgreedModels {
    /// The per-element all-reduce model the planners should use for a wire
    /// format moving `bytes_per_elem` bytes per `f64`:
    /// `β_elem = β_byte · bytes_per_elem + β_encode`, α terms summed. Falls
    /// back to the plain per-element line when no wire-byte fit was agreed,
    /// so f64 runs and cold starts plan exactly as before.
    pub fn effective_allreduce(&self, bytes_per_elem: f64) -> AlphaBetaModel {
        match &self.allreduce_wire {
            Some(wire) => {
                let (enc_alpha, enc_beta) = match &self.encode {
                    Some(e) => (e.alpha, e.beta),
                    None => (0.0, 0.0),
                };
                AlphaBetaModel::new(
                    wire.alpha + enc_alpha,
                    wire.beta * bytes_per_elem + enc_beta,
                )
            }
            None => self.allreduce,
        }
    }
}

/// Reconstructs the agreed models from the *averaged* agreement vector.
///
/// Models no rank could fit fall back to the trainer's baselines, so a
/// cold-start group re-plans from the same models it planned with — a
/// fixed point, not a churn. The wire-byte and codec lines have no
/// baseline: they decode to `None` instead, and
/// [`AgreedModels::effective_allreduce`] degrades to the per-element line.
pub fn decode_models(
    avg: &[f64],
    baseline_comp: &ExpInverseModel,
    baseline_comm: &AlphaBetaModel,
) -> AgreedModels {
    assert!(avg.len() >= AGREEMENT_LEN, "short agreement vector");
    let line = |base: usize, fallback: AlphaBetaModel| -> AlphaBetaModel {
        if avg[base] > 0.0 {
            AlphaBetaModel::new(avg[base + 1] / avg[base], avg[base + 2] / avg[base])
        } else {
            fallback
        }
    };
    let opt_line = |base: usize| -> Option<AlphaBetaModel> {
        (avg[base] > 0.0)
            .then(|| AlphaBetaModel::new(avg[base + 1] / avg[base], avg[base + 2] / avg[base]))
    };
    let allreduce = line(0, *baseline_comm);
    let broadcast = line(3, *baseline_comm);
    let inverse = if avg[6] > 0.0 {
        ExpInverseModel::new(avg[7] / avg[6], avg[8] / avg[6])
    } else {
        *baseline_comp
    };
    AgreedModels {
        allreduce,
        broadcast,
        inverse,
        allreduce_wire: opt_line(9),
        encode: opt_line(12),
    }
}

/// Deterministically recomputes the standing decisions from agreed models.
///
/// Pure function of its arguments: identical inputs on every rank yield the
/// identical candidate plan (LBP and the Eq. 15 planner both break ties
/// deterministically). `prev` is the standing placement (identical on every
/// rank — it is part of the agreed epoch): with it, LBP charges a
/// broadcast-priced migration cost before moving tensor ownership, so
/// marginal model refits keep assignments sticky.
#[allow(clippy::too_many_arguments)]
pub fn replan(
    agreed: &AgreedModels,
    inv_dims: &[usize],
    world: usize,
    placement_strategy: PlacementStrategy,
    prev: Option<&Placement>,
    a_pipeline: Option<&FactorPipeline>,
    g_pipeline: Option<&FactorPipeline>,
    fusion_strategy: FusionStrategy,
) -> (Placement, Option<FusionPlan>, Option<FusionPlan>) {
    let placement = placement::place_with_prev(
        inv_dims,
        world,
        &agreed.inverse,
        &agreed.broadcast,
        placement_strategy,
        prev.map(|p| p.assignments()),
    );
    let a_fusion = a_pipeline.map(|p| fusion::plan(p, &agreed.allreduce, fusion_strategy));
    let g_fusion = g_pipeline.map(|p| fusion::plan(p, &agreed.allreduce, fusion_strategy));
    (placement, a_fusion, g_fusion)
}

/// Outcome of one re-plan barrier, for logging and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplanOutcome {
    /// `true` when the epoch was swapped.
    pub swapped: bool,
    /// The generation active after the barrier.
    pub generation: u64,
    /// Tensors whose placement assignment changed (0 when not swapped).
    pub placement_flips: usize,
    /// `true` when a fusion plan changed message grouping.
    pub fusion_changed: bool,
}

/// Per-rank re-plan state machine: barrier cadence + swap hysteresis.
///
/// All inputs to its decisions are rank-identical (module docs), so every
/// rank's controller advances in lockstep.
#[derive(Debug, Clone)]
pub struct ReplanController {
    policy: ReplanPolicy,
    pending: usize,
}

impl ReplanController {
    /// Creates a controller for `policy`.
    pub fn new(policy: ReplanPolicy) -> Self {
        ReplanController { policy, pending: 0 }
    }

    /// The controller's policy.
    pub fn policy(&self) -> ReplanPolicy {
        self.policy
    }

    /// `true` when ranks must enter the re-plan barrier after (0-based)
    /// iteration `iter`. Deterministic in `iter` alone — the SPMD-safe
    /// entry condition.
    pub fn due(&self, iter: usize) -> bool {
        match self.policy.cadence() {
            Some(n) => (iter + 1).is_multiple_of(n),
            None => false,
        }
    }

    /// Applies the policy to a candidate plan and swaps the store when the
    /// policy says so. Call on every rank with rank-identical inputs,
    /// inside the barrier.
    ///
    /// Re-planning from models that reproduce the current plan is a fixed
    /// point: no swap, no generation bump, and the hysteresis counter
    /// resets.
    pub fn consider(
        &mut self,
        store: &mut PlanStore,
        placement: Placement,
        a_fusion: Option<FusionPlan>,
        g_fusion: Option<FusionPlan>,
    ) -> ReplanOutcome {
        let current = store.current();
        let changed = current.placement != placement
            || current.a_fusion != a_fusion
            || current.g_fusion != g_fusion;
        if !changed {
            self.pending = 0;
            return ReplanOutcome {
                swapped: false,
                generation: store.generation(),
                placement_flips: 0,
                fusion_changed: false,
            };
        }
        self.pending += 1;
        let need = match self.policy {
            ReplanPolicy::OnDrift { hysteresis, .. } => hysteresis.max(1),
            _ => 1,
        };
        if self.pending < need {
            return ReplanOutcome {
                swapped: false,
                generation: store.generation(),
                placement_flips: 0,
                fusion_changed: false,
            };
        }
        self.pending = 0;
        let placement_flips = count_placement_flips(&store.current().placement, &placement);
        let fusion_changed =
            store.current().a_fusion != a_fusion || store.current().g_fusion != g_fusion;
        let generation = store.swap(placement, a_fusion, g_fusion);
        ReplanOutcome {
            swapped: true,
            generation,
            placement_flips,
            fusion_changed,
        }
    }
}

/// Number of tensors whose assignment differs between two placements (the
/// "flips applied" a swap actuates). Placements of different lengths or
/// world sizes count every tensor as flipped.
pub fn count_placement_flips(old: &Placement, new: &Placement) -> usize {
    if old.world() != new.world() || old.assignments().len() != new.assignments().len() {
        return new.assignments().len().max(old.assignments().len());
    }
    old.assignments()
        .iter()
        .zip(new.assignments())
        .filter(|(a, b)| a != b)
        .count()
}

/// Publishes `runtime/*` metrics for one barrier outcome:
///
/// - `runtime/generation` — gauge, the active generation;
/// - `runtime/checks` — counter, barriers entered;
/// - `runtime/swaps` — counter, epochs swapped;
/// - `runtime/flips_applied` — counter, placement assignments changed by
///   swaps;
/// - `runtime/fusion_replans` — counter, swaps that changed a fusion plan;
/// - `runtime/swap_latency_s` — histogram, wall time of the whole barrier
///   (refit + agreement all-reduce + re-plan + swap).
pub fn publish_replan_metrics(m: &MetricsRegistry, outcome: &ReplanOutcome, latency_s: f64) {
    m.gauge("runtime/generation").set(outcome.generation as f64);
    m.counter("runtime/checks").inc();
    if outcome.swapped {
        m.counter("runtime/swaps").inc();
        m.counter("runtime/flips_applied")
            .add(outcome.placement_flips as u64);
        if outcome.fusion_changed {
            m.counter("runtime/fusion_replans").inc();
        }
    }
    m.histogram("runtime/swap_latency_s").observe(latency_s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::LbpWeight;

    fn comm() -> AlphaBetaModel {
        AlphaBetaModel::new(2e-4, 2e-9)
    }

    fn comp() -> ExpInverseModel {
        ExpInverseModel::new(5e-5, 2e-3)
    }

    fn agreed_from_baselines() -> AgreedModels {
        AgreedModels {
            allreduce: comm(),
            broadcast: comm(),
            inverse: comp(),
            allreduce_wire: None,
            encode: None,
        }
    }

    fn strategy() -> PlacementStrategy {
        PlacementStrategy::Lbp {
            weight: LbpWeight::DimSquared,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let models = RefitModels {
            allreduce: Some(AlphaBetaModel::new(1e-3, 5e-8)),
            broadcast: Some(AlphaBetaModel::new(2e-3, 7e-8)),
            broadcast_is_prior: false,
            inverse: Some(ExpInverseModel::new(3e-4, 1.5e-3)),
            inverse_cubic: None,
            allreduce_wire: Some(AlphaBetaModel::new(9e-4, 6e-9)),
            encode: Some(AlphaBetaModel::new(1e-6, 1.2e-9)),
        };
        let v = encode_models(&models);
        let agreed = decode_models(&v, &comp(), &comm());
        assert!((agreed.allreduce.alpha - 1e-3).abs() < 1e-15);
        assert!((agreed.broadcast.beta - 7e-8).abs() < 1e-20);
        assert!((agreed.inverse.alpha - 3e-4).abs() < 1e-15);
        let wire = agreed.allreduce_wire.expect("wire line agreed");
        assert!((wire.beta - 6e-9).abs() < 1e-20);
        let enc = agreed.encode.expect("codec line agreed");
        assert!((enc.beta - 1.2e-9).abs() < 1e-20);
    }

    #[test]
    fn effective_allreduce_composes_wire_and_codec() {
        let mut agreed = agreed_from_baselines();
        // Without a wire fit the plain per-element line is returned as-is.
        assert_eq!(agreed.effective_allreduce(2.0), agreed.allreduce);
        agreed.allreduce_wire = Some(AlphaBetaModel::new(1e-4, 3e-9));
        agreed.encode = Some(AlphaBetaModel::new(2e-5, 1e-9));
        // f16 (2 B/element): β_elem = 3e-9·2 + 1e-9, α terms summed.
        let eff = agreed.effective_allreduce(2.0);
        assert!((eff.alpha - 1.2e-4).abs() < 1e-15);
        assert!((eff.beta - 7e-9).abs() < 1e-20);
        // Codec-free wire fit still composes.
        agreed.encode = None;
        let eff = agreed.effective_allreduce(8.0);
        assert!((eff.beta - 24e-9).abs() < 1e-20);
    }

    #[test]
    fn wireless_ranks_decode_to_no_wire_line() {
        // No rank fit wire/codec lines: agreement must decode them to None,
        // not to a zero-coefficient model that would predict free comm.
        let v = encode_models(&RefitModels {
            allreduce: Some(AlphaBetaModel::new(1e-3, 5e-8)),
            ..RefitModels::default()
        });
        let agreed = decode_models(&v, &comp(), &comm());
        assert!(agreed.allreduce_wire.is_none());
        assert!(agreed.encode.is_none());
    }

    #[test]
    fn decode_averages_only_over_fitted_ranks() {
        // Rank A fit (α=2e-3), ranks B,C did not: the averaged vector is
        // the element-wise mean; decode must recover rank A's α exactly.
        let fitted = RefitModels {
            allreduce: Some(AlphaBetaModel::new(2e-3, 4e-8)),
            ..RefitModels::default()
        };
        let unfitted = RefitModels::default();
        let vecs = [
            encode_models(&fitted),
            encode_models(&unfitted),
            encode_models(&unfitted),
        ];
        let mut avg = [0.0f64; AGREEMENT_LEN];
        for v in &vecs {
            for (a, x) in avg.iter_mut().zip(v) {
                *a += x / vecs.len() as f64;
            }
        }
        let agreed = decode_models(&avg, &comp(), &comm());
        assert!((agreed.allreduce.alpha - 2e-3).abs() < 1e-12);
        assert!((agreed.allreduce.beta - 4e-8).abs() < 1e-18);
        // No rank fit broadcast/inverse: baselines stand in.
        assert_eq!(agreed.broadcast, comm());
        assert_eq!(agreed.inverse.alpha, comp().alpha);
    }

    #[test]
    fn replan_from_identical_models_is_fixed_point() {
        let dims = vec![64usize, 256, 1024, 2048, 32, 512];
        let agreed = agreed_from_baselines();
        let (p0, _, _) = replan(
            &agreed,
            &dims,
            4,
            strategy(),
            None,
            None,
            None,
            FusionStrategy::Optimal,
        );
        let mut store = PlanStore::new(p0.clone(), None, None);
        let mut ctl = ReplanController::new(ReplanPolicy::EveryN(1));
        for _ in 0..5 {
            let (p, a, g) = replan(
                &agreed,
                &dims,
                4,
                strategy(),
                None,
                None,
                None,
                FusionStrategy::Optimal,
            );
            let out = ctl.consider(&mut store, p, a, g);
            assert!(!out.swapped, "identical models must not churn the plan");
            assert_eq!(out.generation, 0);
        }
        assert_eq!(store.current().placement, p0);
    }

    #[test]
    fn drifted_models_swap_and_bump_generation() {
        let dims = vec![64usize, 256, 1024, 2048, 32, 512];
        let base = agreed_from_baselines();
        let (p0, _, _) = replan(
            &base,
            &dims,
            4,
            strategy(),
            None,
            None,
            None,
            FusionStrategy::Optimal,
        );
        let mut store = PlanStore::new(p0, None, None);
        let mut ctl = ReplanController::new(ReplanPolicy::EveryN(1));
        // Inversion now ~1e6x slower than the baseline believed: NCTs flip
        // to CT, the placement changes.
        let drifted = AgreedModels {
            inverse: ExpInverseModel::new(comp().alpha * 1e6, comp().beta),
            ..base
        };
        let (p, a, g) = replan(
            &drifted,
            &dims,
            4,
            strategy(),
            None,
            None,
            None,
            FusionStrategy::Optimal,
        );
        let out = ctl.consider(&mut store, p, a, g);
        assert!(out.swapped);
        assert_eq!(out.generation, 1);
        assert!(out.placement_flips > 0);
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn hysteresis_defers_swap_until_consecutive_flags() {
        let dims = vec![64usize, 2048];
        let base = agreed_from_baselines();
        let (p0, _, _) = replan(
            &base,
            &dims,
            2,
            strategy(),
            None,
            None,
            None,
            FusionStrategy::Optimal,
        );
        let mut store = PlanStore::new(p0, None, None);
        let mut ctl = ReplanController::new(ReplanPolicy::OnDrift {
            check_every: 1,
            hysteresis: 3,
        });
        let drifted = AgreedModels {
            inverse: ExpInverseModel::new(comp().alpha * 1e6, comp().beta),
            ..base
        };
        for round in 0..2 {
            let (p, a, g) = replan(
                &drifted,
                &dims,
                2,
                strategy(),
                None,
                None,
                None,
                FusionStrategy::Optimal,
            );
            let out = ctl.consider(&mut store, p, a, g);
            assert!(!out.swapped, "round {round} swapped before hysteresis");
        }
        // A clean check in between resets the streak.
        let (p, a, g) = replan(
            &base,
            &dims,
            2,
            strategy(),
            None,
            None,
            None,
            FusionStrategy::Optimal,
        );
        assert!(!ctl.consider(&mut store, p, a, g).swapped);
        for round in 0..3 {
            let (p, a, g) = replan(
                &drifted,
                &dims,
                2,
                strategy(),
                None,
                None,
                None,
                FusionStrategy::Optimal,
            );
            let out = ctl.consider(&mut store, p, a, g);
            assert_eq!(out.swapped, round == 2, "round {round}");
        }
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn due_follows_policy_cadence() {
        assert!(!ReplanController::new(ReplanPolicy::Off).due(0));
        assert!(!ReplanController::new(ReplanPolicy::Off).due(99));
        let every3 = ReplanController::new(ReplanPolicy::EveryN(3));
        assert!(!every3.due(0));
        assert!(!every3.due(1));
        assert!(every3.due(2));
        assert!(every3.due(5));
        let drift = ReplanController::new(ReplanPolicy::OnDrift {
            check_every: 2,
            hysteresis: 2,
        });
        assert!(!drift.due(0));
        assert!(drift.due(1));
        assert!(drift.due(3));
    }

    #[test]
    fn install_fusion_does_not_bump_generation() {
        let dims = vec![64usize, 2048];
        let base = agreed_from_baselines();
        let (p0, _, _) = replan(
            &base,
            &dims,
            2,
            strategy(),
            None,
            None,
            None,
            FusionStrategy::Optimal,
        );
        let mut store = PlanStore::new(p0, None, None);
        let pipe = FactorPipeline::new(vec![0.0, 0.1], vec![100, 200]).expect("pipeline");
        let plan = fusion::plan(&pipe, &comm(), FusionStrategy::Optimal);
        store.install_fusion(Some(plan.clone()), None);
        assert_eq!(store.generation(), 0);
        assert_eq!(store.current().a_fusion.as_ref(), Some(&plan));
    }

    #[test]
    fn metrics_published_per_outcome() {
        let m = MetricsRegistry::new();
        let swap = ReplanOutcome {
            swapped: true,
            generation: 2,
            placement_flips: 3,
            fusion_changed: true,
        };
        publish_replan_metrics(&m, &swap, 0.25e-3);
        let noop = ReplanOutcome {
            swapped: false,
            generation: 2,
            placement_flips: 0,
            fusion_changed: false,
        };
        publish_replan_metrics(&m, &noop, 0.1e-3);
        let snap = m.snapshot();
        assert_eq!(snap.gauges["runtime/generation"], 2.0);
        assert_eq!(snap.counters["runtime/checks"], 2);
        assert_eq!(snap.counters["runtime/swaps"], 1);
        assert_eq!(snap.counters["runtime/flips_applied"], 3);
        assert_eq!(snap.counters["runtime/fusion_replans"], 1);
        assert_eq!(snap.histograms["runtime/swap_latency_s"].count, 2);
    }
}
