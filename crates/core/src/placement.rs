//! Load-balancing placement of matrix-inversion workloads (§IV-B,
//! Algorithm 1) and the baselines of Fig. 12.
//!
//! Given the `2L` damped Kronecker factors of a model, every GPU must end up
//! with every inverse. A tensor is either:
//!
//! - **CT** (communicated tensor): inverted on exactly one GPU and broadcast
//!   to the rest; or
//! - **NCT** (non-communicated tensor): inverted redundantly on *every* GPU
//!   (cheaper than broadcasting when the tensor is small — Fig. 11).
//!
//! Algorithm 1 (LBP) walks the tensors in decreasing dimension, classifies
//! each as NCT iff its modelled compute time is below its modelled broadcast
//! time, and assigns CTs to the currently least-loaded GPU.

use crate::perf::{AlphaBetaModel, ExpInverseModel};

/// Where a tensor's inversion runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorAssignment {
    /// NCT: inverted on every GPU, never communicated (Eq. 18).
    AllGpus,
    /// CT: inverted on the given GPU and broadcast to the others.
    Gpu(usize),
}

/// A placement of `N` tensors across `world` GPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    assignments: Vec<TensorAssignment>,
    world: usize,
}

impl Placement {
    /// Creates a placement after validating GPU indices.
    ///
    /// # Panics
    ///
    /// Panics if any CT assignment names a GPU `>= world` or `world == 0`.
    pub fn new(assignments: Vec<TensorAssignment>, world: usize) -> Self {
        assert!(world > 0, "Placement requires at least one GPU");
        for a in &assignments {
            if let TensorAssignment::Gpu(p) = a {
                assert!(*p < world, "assignment to GPU {p} out of range {world}");
            }
        }
        Placement { assignments, world }
    }

    /// Number of GPUs.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Per-tensor assignments in tensor order.
    pub fn assignments(&self) -> &[TensorAssignment] {
        &self.assignments
    }

    /// `true` if tensor `i` is an NCT.
    pub fn is_nct(&self, i: usize) -> bool {
        matches!(self.assignments[i], TensorAssignment::AllGpus)
    }

    /// Tensors that GPU `p` must invert (its `S_p`, Eq. 16): its own CTs
    /// plus every NCT.
    pub fn set_for_gpu(&self, p: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                matches!(a, TensorAssignment::AllGpus) || **a == TensorAssignment::Gpu(p)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of NCTs.
    pub fn num_nct(&self) -> usize {
        (0..self.assignments.len())
            .filter(|&i| self.is_nct(i))
            .count()
    }

    /// Per-GPU modelled load (Eq. 21's inner sums): each GPU's inversion
    /// time plus the broadcast time of its CTs. NCT inversions count toward
    /// every GPU.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` differs from the placement length.
    pub fn per_gpu_load(
        &self,
        dims: &[usize],
        comp: &ExpInverseModel,
        comm: &AlphaBetaModel,
    ) -> Vec<f64> {
        assert_eq!(dims.len(), self.assignments.len(), "dims length mismatch");
        let mut per_gpu = vec![0.0f64; self.world];
        for (i, a) in self.assignments.iter().enumerate() {
            match a {
                TensorAssignment::AllGpus => {
                    for t in per_gpu.iter_mut() {
                        *t += comp.time(dims[i]);
                    }
                }
                TensorAssignment::Gpu(p) => {
                    per_gpu[*p] += comp.time(dims[i]) + comm.time_packed(dims[i]);
                }
            }
        }
        per_gpu
    }

    /// Evaluates the paper's objective (Eq. 21): the maximum over GPUs of
    /// [`Placement::per_gpu_load`].
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` differs from the placement length.
    pub fn modeled_time(
        &self,
        dims: &[usize],
        comp: &ExpInverseModel,
        comm: &AlphaBetaModel,
    ) -> f64 {
        self.per_gpu_load(dims, comp, comm)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

/// Everything a [`PlacementPolicy`] may consult when assigning tensors.
///
/// `dims` are the tensor dimensions in tensor order; `comp`/`comm` are the
/// agreed inversion / broadcast cost models (Eq. 26 / Eq. 27). `prev`
/// carries the standing assignments when a policy runs at a re-plan
/// barrier, so it can price ownership migration instead of thrashing;
/// `gpus_per_node` is the topology hint (1 = flat cluster) that
/// topology-aware policies use to reason about NVLink/PCIe islands.
#[derive(Debug, Clone, Copy)]
pub struct PlacementContext<'a> {
    /// Tensor dimensions, in tensor order.
    pub dims: &'a [usize],
    /// Number of GPUs.
    pub world: usize,
    /// Inversion cost model (Eq. 26).
    pub comp: &'a ExpInverseModel,
    /// Broadcast cost model (Eq. 27).
    pub comm: &'a AlphaBetaModel,
    /// Standing assignments from the previous plan generation, if any.
    pub prev: Option<&'a [TensorAssignment]>,
    /// GPUs per node (1 when the topology is flat / unknown).
    pub gpus_per_node: usize,
}

impl<'a> PlacementContext<'a> {
    /// A flat-topology context with no standing plan.
    pub fn new(
        dims: &'a [usize],
        world: usize,
        comp: &'a ExpInverseModel,
        comm: &'a AlphaBetaModel,
    ) -> Self {
        PlacementContext {
            dims,
            world,
            comp,
            comm,
            prev: None,
            gpus_per_node: 1,
        }
    }

    /// Attaches the previous generation's assignments.
    pub fn with_prev(mut self, prev: Option<&'a [TensorAssignment]>) -> Self {
        self.prev = prev;
        self
    }

    /// Sets the GPUs-per-node topology hint.
    pub fn with_gpus_per_node(mut self, gpus_per_node: usize) -> Self {
        self.gpus_per_node = gpus_per_node.max(1);
        self
    }
}

/// A pluggable inverse-placement policy: the extraction of Algorithm 1's
/// role into a trait so LBP competes head-to-head against HEFT-style,
/// memory-aware, and topology-aware schedulers (the `sim::sched` impls).
///
/// Implementations must be **pure**: the same context (same dims in the
/// same order, same models, same `prev`) must yield the same placement on
/// every rank — placements are part of the SPMD-agreed state.
pub trait PlacementPolicy: Send + Sync {
    /// Stable identifier for reports and benchmark rows.
    fn name(&self) -> String;

    /// Computes the placement for `ctx`.
    fn place(&self, ctx: &PlacementContext<'_>) -> Placement;
}

impl PlacementPolicy for PlacementStrategy {
    fn name(&self) -> String {
        match self {
            PlacementStrategy::NonDist => "non-dist".into(),
            PlacementStrategy::SeqDist => "seq-dist".into(),
            PlacementStrategy::Lbp { weight } => match weight {
                LbpWeight::Dim => "lbp-dim".into(),
                LbpWeight::DimSquared => "lbp".into(),
                LbpWeight::ModeledTime => "lbp-time".into(),
            },
        }
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Placement {
        place_with_prev(ctx.dims, ctx.world, ctx.comp, ctx.comm, *self, ctx.prev)
    }
}

/// The workload weight LBP balances (DESIGN.md §4 discusses the pseudocode
/// vs Eq. 25 discrepancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LbpWeight {
    /// Pseudocode-literal: bucket grows by `d_i` (Algorithm 1, lines 10/13).
    Dim,
    /// Eq. 25 / Eq. 20: bucket grows by `d_i²` (the stated objective —
    /// default).
    #[default]
    DimSquared,
    /// Bucket grows by the modelled time `t_comp(d) (+ t_comm(d)` for CTs).
    ModeledTime,
}

/// Placement strategies evaluated in Fig. 12 / Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementStrategy {
    /// Every GPU inverts everything locally (D-KFAC).
    NonDist,
    /// Round-robin over GPUs, everything CT (MPD-KFAC, Eq. 22).
    SeqDist,
    /// Load-balancing placement with CT/NCT classification (Algorithm 1).
    Lbp {
        /// Bucket weight variant.
        weight: LbpWeight,
    },
}

impl Default for PlacementStrategy {
    fn default() -> Self {
        PlacementStrategy::Lbp {
            weight: LbpWeight::default(),
        }
    }
}

/// Computes a placement of tensors with dimensions `dims` over `world` GPUs.
///
/// `comp`/`comm` supply the time estimates Algorithm 1's NCT test and the
/// `ModeledTime` weight need; `NonDist` and `SeqDist` ignore them.
pub fn place(
    dims: &[usize],
    world: usize,
    comp: &ExpInverseModel,
    comm: &AlphaBetaModel,
    strategy: PlacementStrategy,
) -> Placement {
    place_with_prev(dims, world, comp, comm, strategy, None)
}

/// As [`place`], but with the previous generation's assignments available:
/// LBP then charges a broadcast-priced migration cost for moving a CT away
/// from its standing owner, so re-plans on marginally drifted models keep
/// assignments sticky instead of thrashing ownership (and the factor state
/// that lives with it).
pub fn place_with_prev(
    dims: &[usize],
    world: usize,
    comp: &ExpInverseModel,
    comm: &AlphaBetaModel,
    strategy: PlacementStrategy,
    prev: Option<&[TensorAssignment]>,
) -> Placement {
    assert!(world > 0, "place requires at least one GPU");
    match strategy {
        PlacementStrategy::NonDist => {
            Placement::new(vec![TensorAssignment::AllGpus; dims.len()], world)
        }
        PlacementStrategy::SeqDist => Placement::new(
            (0..dims.len())
                .map(|i| TensorAssignment::Gpu(i % world))
                .collect(),
            world,
        ),
        PlacementStrategy::Lbp { weight } => lbp_with_prev(dims, world, comp, comm, weight, prev),
    }
}

/// Algorithm 1: Load-Balancing Placement with dynamic tensor-type
/// determination.
pub fn lbp(
    dims: &[usize],
    world: usize,
    comp: &ExpInverseModel,
    comm: &AlphaBetaModel,
    weight: LbpWeight,
) -> Placement {
    lbp_with_prev(dims, world, comp, comm, weight, None)
}

/// As [`lbp`], optionally migration-aware.
///
/// Without `prev` this is Algorithm 1 verbatim. With `prev`, the CT
/// bucket choice runs in modelled-seconds space (whatever `weight` says —
/// migration is priced in seconds, so the comparison must be too) and each
/// candidate GPU that is not the tensor's standing owner is surcharged one
/// packed broadcast of the tensor: moving ownership costs exactly one
/// fan-out of the factor state the new owner does not have.
pub fn lbp_with_prev(
    dims: &[usize],
    world: usize,
    comp: &ExpInverseModel,
    comm: &AlphaBetaModel,
    weight: LbpWeight,
    prev: Option<&[TensorAssignment]>,
) -> Placement {
    // Line 3: indices sorted by dimension, descending (ties by index for
    // determinism).
    let mut order: Vec<usize> = (0..dims.len()).collect();
    order.sort_by(|&a, &b| dims[b].cmp(&dims[a]).then(a.cmp(&b)));

    // Migration-aware selection compares seconds against seconds.
    let weight = if prev.is_some() {
        LbpWeight::ModeledTime
    } else {
        weight
    };
    let w = |d: usize, ct: bool| -> f64 {
        match weight {
            LbpWeight::Dim => d as f64,
            LbpWeight::DimSquared => (d as f64) * (d as f64),
            LbpWeight::ModeledTime => comp.time(d) + if ct { comm.time_packed(d) } else { 0.0 },
        }
    };

    let mut buckets = vec![0.0f64; world];
    let mut assignments = vec![TensorAssignment::AllGpus; dims.len()];
    for &i in &order {
        let d = dims[i];
        let t_comp = comp.time(d);
        let t_comm = comm.time_packed(d);
        if t_comp < t_comm {
            // Lines 8-10: NCT — replicate the computation everywhere.
            assignments[i] = TensorAssignment::AllGpus;
            let wv = w(d, false);
            for b in buckets.iter_mut() {
                *b += wv;
            }
        } else {
            // Lines 11-13: CT — least-loaded GPU (line 5), surcharged by
            // the migration broadcast when a standing owner exists.
            let owner = prev.and_then(|p| match p.get(i) {
                Some(TensorAssignment::Gpu(q)) => Some(*q),
                _ => None,
            });
            let p = buckets
                .iter()
                .enumerate()
                .map(|(p, &b)| {
                    let migrate = match owner {
                        Some(q) if q != p => comm.time_packed(d),
                        _ => 0.0,
                    };
                    (p, b + migrate)
                })
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite weights"))
                .map(|(p, _)| p)
                .expect("world > 0");
            assignments[i] = TensorAssignment::Gpu(p);
            buckets[p] += w(d, true);
        }
    }
    Placement::new(assignments, world)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Models under which tensors with `d < 100` are NCT.
    fn toy_models() -> (ExpInverseModel, AlphaBetaModel) {
        // comp(100) ≈ comm(100): alpha_bc + beta_bc·5050 with bcast below.
        let comp = ExpInverseModel::new(1e-3, 0.5e-2); // comp(100) = e^0.5 ms ≈ 1.65 ms
        let comm = AlphaBetaModel::new(1.2e-3, 1e-7); // comm(100) ≈ 1.2 ms + 0.5 ms
        (comp, comm)
    }

    #[test]
    fn non_dist_replicates_everything() {
        let (comp, comm) = toy_models();
        let p = place(&[10, 20, 30], 4, &comp, &comm, PlacementStrategy::NonDist);
        assert_eq!(p.num_nct(), 3);
        for g in 0..4 {
            assert_eq!(p.set_for_gpu(g), vec![0, 1, 2]);
        }
    }

    #[test]
    fn seq_dist_round_robins_all_ct() {
        let (comp, comm) = toy_models();
        let p = place(
            &[10, 20, 30, 40, 50],
            2,
            &comp,
            &comm,
            PlacementStrategy::SeqDist,
        );
        assert_eq!(p.num_nct(), 0);
        assert_eq!(p.set_for_gpu(0), vec![0, 2, 4]);
        assert_eq!(p.set_for_gpu(1), vec![1, 3]);
    }

    #[test]
    fn lbp_small_tensors_become_nct() {
        let (comp, comm) = toy_models();
        let dims = vec![8, 16, 2000, 3000];
        let p = place(&dims, 2, &comp, &comm, PlacementStrategy::default());
        assert!(p.is_nct(0), "dim 8 should be NCT");
        assert!(p.is_nct(1), "dim 16 should be NCT");
        assert!(!p.is_nct(2), "dim 2000 should be CT");
        assert!(!p.is_nct(3), "dim 3000 should be CT");
        // NCT test is exactly t_comp < t_comm:
        for (i, &d) in dims.iter().enumerate() {
            assert_eq!(p.is_nct(i), comp.time(d) < comm.time_packed(d));
        }
    }

    #[test]
    fn lbp_balances_big_tensors_across_gpus() {
        let (comp, comm) = toy_models();
        // Two big tensors on two GPUs must land on different GPUs.
        let p = place(&[3000, 3000], 2, &comp, &comm, PlacementStrategy::default());
        let a0 = p.assignments()[0];
        let a1 = p.assignments()[1];
        assert_ne!(a0, a1);
    }

    #[test]
    fn fig5_example_balanced_beats_sequential() {
        // Four CT tensors with uneven sizes on two GPUs, as in Fig. 5:
        // sequential puts {1st, 3rd} vs {2nd, 4th}; LBP pairs big-with-small.
        let (comp, comm) = toy_models();
        let dims = vec![4000, 3800, 2600, 2500];
        let seq = place(&dims, 2, &comp, &comm, PlacementStrategy::SeqDist);
        let lbp = place(&dims, 2, &comp, &comm, PlacementStrategy::default());
        let t_seq = seq.modeled_time(&dims, &comp, &comm);
        let t_lbp = lbp.modeled_time(&dims, &comp, &comm);
        assert!(
            t_lbp <= t_seq + 1e-12,
            "LBP {t_lbp} should not lose to Seq-Dist {t_seq}"
        );
        // LBP puts the two largest on different GPUs.
        assert_ne!(lbp.assignments()[0], lbp.assignments()[1]);
    }

    #[test]
    fn fig5c_ncts_save_time_over_all_ct() {
        // Small tensors waste broadcast startup; replicating their inversion
        // (NCT) beats communicating them — the Fig. 5(b) vs 5(c) comparison.
        let (comp, comm) = toy_models();
        let dims = vec![3000, 2500, 20, 24];
        let lbp = place(&dims, 2, &comp, &comm, PlacementStrategy::default());
        assert!(lbp.num_nct() >= 2);
        // Force the all-CT variant of the same balance for comparison.
        let all_ct = Placement::new(
            vec![
                TensorAssignment::Gpu(0),
                TensorAssignment::Gpu(1),
                TensorAssignment::Gpu(1),
                TensorAssignment::Gpu(0),
            ],
            2,
        );
        assert!(lbp.modeled_time(&dims, &comp, &comm) < all_ct.modeled_time(&dims, &comp, &comm));
    }

    #[test]
    fn every_tensor_is_assigned_exactly_once_or_everywhere() {
        let (comp, comm) = toy_models();
        let dims: Vec<usize> = (1..40).map(|i| i * 97 % 3000 + 8).collect();
        for world in [1usize, 2, 4, 8] {
            let p = place(&dims, world, &comp, &comm, PlacementStrategy::default());
            // Union over GPUs covers all tensors (Eq. 16)…
            let mut covered = vec![0usize; dims.len()];
            for g in 0..world {
                for i in p.set_for_gpu(g) {
                    covered[i] += 1;
                }
            }
            for (i, &c) in covered.iter().enumerate() {
                if p.is_nct(i) {
                    assert_eq!(c, world, "NCT {i} must be on all GPUs (Eq. 18)");
                } else {
                    assert_eq!(c, 1, "CT {i} must be on exactly one GPU (Eq. 19)");
                }
            }
        }
    }

    #[test]
    fn lbp_within_lpt_bound_of_lower_bound() {
        // Greedy LPT guarantee: makespan ≤ 4/3 · OPT. Check against the
        // trivial lower bound max(total/P, max_item) on the balanced weight.
        let (comp, comm) = toy_models();
        let dims: Vec<usize> = (0..60).map(|i| (i * 131 % 2900) + 150).collect();
        let world = 8;
        let p = lbp(&dims, world, &comp, &comm, LbpWeight::DimSquared);
        // All dims here are CT (≥ 150 ⇒ comp > comm under toy models? ensure).
        let mut loads = vec![0.0f64; world];
        let mut total = 0.0;
        let mut max_item: f64 = 0.0;
        for (i, &d) in dims.iter().enumerate() {
            let wv = (d * d) as f64;
            match p.assignments()[i] {
                TensorAssignment::Gpu(g) => {
                    loads[g] += wv;
                    total += wv;
                    max_item = max_item.max(wv);
                }
                TensorAssignment::AllGpus => { /* excluded from the bound */ }
            }
        }
        let makespan = loads.iter().cloned().fold(0.0, f64::max);
        let lower = (total / world as f64).max(max_item);
        assert!(
            makespan <= lower * 4.0 / 3.0 + 1e-9,
            "makespan {makespan} vs lower bound {lower}"
        );
    }

    #[test]
    fn per_gpu_load_matches_modeled_time_and_counts_ncts_everywhere() {
        let (comp, comm) = toy_models();
        let dims = vec![3000, 2500, 20];
        let p = place(&dims, 2, &comp, &comm, PlacementStrategy::default());
        let loads = p.per_gpu_load(&dims, &comp, &comm);
        assert_eq!(loads.len(), 2);
        assert_eq!(
            p.modeled_time(&dims, &comp, &comm),
            loads.iter().cloned().fold(0.0, f64::max)
        );
        // The NCT (dim 20) is replicated: both loads include its compute.
        assert!(p.is_nct(2));
        assert!(loads.iter().all(|&l| l >= comp.time(20)));
    }

    #[test]
    fn single_gpu_everything_local() {
        let (comp, comm) = toy_models();
        let p = place(&[100, 200], 1, &comp, &comm, PlacementStrategy::default());
        assert_eq!(p.set_for_gpu(0), vec![0, 1]);
    }

    #[test]
    fn migration_cost_keeps_marginal_replans_sticky() {
        // A small model drift must not flip ownership: re-planning with
        // `prev` under slightly different models keeps every CT where it
        // was, because moving it costs a full broadcast.
        let (comp, comm) = toy_models();
        let dims = vec![3000, 2900, 2800, 2700, 300, 400];
        let first = place(&dims, 4, &comp, &comm, PlacementStrategy::default());
        let drifted = AlphaBetaModel::new(comm.alpha * 1.05, comm.beta * 0.97);
        let second = place_with_prev(
            &dims,
            4,
            &comp,
            &drifted,
            PlacementStrategy::default(),
            Some(first.assignments()),
        );
        for (i, (a, b)) in first
            .assignments()
            .iter()
            .zip(second.assignments())
            .enumerate()
        {
            if let (TensorAssignment::Gpu(p), TensorAssignment::Gpu(q)) = (a, b) {
                assert_eq!(p, q, "tensor {i} migrated {p} -> {q} on a marginal drift");
            }
        }
    }

    #[test]
    fn migration_still_moves_under_gross_imbalance() {
        // The surcharge is one broadcast, not a veto: if the standing plan
        // is grossly imbalanced (everything on GPU 0), re-planning with
        // `prev` still spreads the load.
        let (comp, comm) = toy_models();
        let dims = vec![3000, 3000, 3000, 3000];
        let skewed = Placement::new(vec![TensorAssignment::Gpu(0); 4], 4);
        let rebal = place_with_prev(
            &dims,
            4,
            &comp,
            &comm,
            PlacementStrategy::default(),
            Some(skewed.assignments()),
        );
        let moved = rebal
            .assignments()
            .iter()
            .filter(|a| !matches!(a, TensorAssignment::Gpu(0)))
            .count();
        assert!(moved >= 2, "only {moved} tensors left the overloaded GPU");
        assert!(rebal.modeled_time(&dims, &comp, &comm) < skewed.modeled_time(&dims, &comp, &comm));
    }

    #[test]
    fn policy_trait_matches_free_function() {
        let (comp, comm) = toy_models();
        let dims = vec![8, 16, 2000, 3000, 450];
        for strategy in [
            PlacementStrategy::NonDist,
            PlacementStrategy::SeqDist,
            PlacementStrategy::default(),
        ] {
            let ctx = PlacementContext::new(&dims, 4, &comp, &comm);
            let via_trait = PlacementPolicy::place(&strategy, &ctx);
            let direct = place(&dims, 4, &comp, &comm, strategy);
            assert_eq!(via_trait, direct, "{}", PlacementPolicy::name(&strategy));
        }
    }

    #[test]
    fn weight_variants_produce_valid_placements() {
        let (comp, comm) = toy_models();
        let dims = vec![500, 1000, 1500, 2000, 2500];
        for w in [
            LbpWeight::Dim,
            LbpWeight::DimSquared,
            LbpWeight::ModeledTime,
        ] {
            let p = lbp(&dims, 3, &comp, &comm, w);
            assert_eq!(p.assignments().len(), 5);
        }
    }
}
