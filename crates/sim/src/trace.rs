//! Chrome-trace export of simulated schedules.
//!
//! [`to_chrome_trace`] renders a [`SimReport`] as Chrome Tracing / Perfetto
//! JSON (`chrome://tracing`, <https://ui.perfetto.dev>), giving the same
//! timeline view as the paper's Fig. 1/Fig. 4 diagrams: one row per GPU
//! stream plus one row for the network, with the task categories as named
//! slices.

use crate::graph::{to_obs_spans, Tag};
use crate::report::SimReport;
use spdkfac_obs::{chrome_trace, TrackLayout};

/// Serialises the schedule as a Chrome Tracing JSON document.
///
/// `network_resource` names the resource id that should be labelled as the
/// network row (the iteration builders use the highest resource id).
/// Delegates to the shared [`spdkfac_obs::chrome_trace`] serializer, so
/// simulated and measured traces have the identical JSON shape; slice names
/// come from each tag's [`Phase`](spdkfac_obs::Phase).
pub fn to_chrome_trace(report: &SimReport, network_resource: usize) -> String {
    let max_res = report
        .spans
        .iter()
        .map(|s| s.resource)
        .max()
        .unwrap_or(0)
        .max(network_resource);
    let layout = TrackLayout::simulator(network_resource, max_res);
    chrome_trace(&to_obs_spans(&report.spans), &layout)
}

/// Renders the schedule as a fixed-width ASCII timeline — the Fig. 1
/// diagram, but generated from an actual simulation. One row per resource;
/// each column is a time slice labelled by the dominant task's category
/// letter (`F` FF&BP, `g` grad comm, `C` factor comp, `c` factor comm,
/// `I` inverse comp, `i` inverse comm, `U` update, `.` idle).
pub fn ascii_timeline(report: &SimReport, network_resource: usize, width: usize) -> String {
    let width = width.max(10);
    let total = report.total.max(1e-12);
    let max_res = report
        .spans
        .iter()
        .map(|s| s.resource)
        .max()
        .unwrap_or(0)
        .max(network_resource);
    let letter = |tag: Tag| match tag {
        Tag::FfBp => 'F',
        Tag::GradComm => 'g',
        Tag::FactorComp => 'C',
        Tag::FactorComm => 'c',
        Tag::InverseComp => 'I',
        Tag::InverseComm => 'i',
        Tag::Other => 'U',
    };
    let mut out = String::new();
    for res in 0..=max_res {
        let label = if res < network_resource {
            format!("gpu{res:<4}")
        } else if res == network_resource {
            "network".to_string()
        } else {
            format!("link{:<3}", res - network_resource - 1)
        };
        let mut row = vec!['.'; width];
        for s in report.spans.iter().filter(|s| s.resource == res) {
            let c0 = ((s.start / total) * width as f64).floor() as usize;
            let c1 = (((s.end / total) * width as f64).ceil() as usize).min(width);
            for cell in row.iter_mut().take(c1).skip(c0.min(width)) {
                *cell = letter(s.tag);
            }
        }
        out.push_str(&format!("{label:<8}|"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:<8} 0s{}{:.3}s\n",
        "",
        " ".repeat(width.saturating_sub(6)),
        report.total
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{simulate_iteration, Algo, SimConfig};
    use spdkfac_models::resnet50;

    #[test]
    fn trace_contains_all_rows_and_categories() {
        let cfg = SimConfig::paper_testbed(4);
        let r = simulate_iteration(&resnet50(), &cfg, Algo::SpdKfac);
        let json = to_chrome_trace(&r, 4);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        for label in [
            "gpu0",
            "network",
            "FF&BP",
            "FactorComp",
            "FactorComm",
            "InverseComp",
        ] {
            assert!(json.contains(label), "missing {label}");
        }
        // Event count: metadata rows + one slice per non-empty span.
        let events = json.matches("\"ph\":\"X\"").count();
        let nonempty = r.spans.iter().filter(|s| s.end > s.start).count();
        assert_eq!(events, nonempty);
    }

    #[test]
    fn ascii_timeline_has_one_row_per_resource() {
        let cfg = SimConfig::paper_testbed(2);
        let r = simulate_iteration(&resnet50(), &cfg, Algo::SpdKfac);
        let art = ascii_timeline(&r, 2, 80);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4); // gpu0, gpu1, network, axis
        assert!(lines[0].starts_with("gpu0"));
        assert!(lines[2].starts_with("network"));
        // Compute row shows forward/backward and factor work.
        assert!(lines[0].contains('F') && lines[0].contains('C'));
        // Network row shows factor communication.
        assert!(lines[2].contains('c'));
        // All timeline rows share the same width.
        let w0 = lines[0].len();
        assert_eq!(lines[1].len(), w0);
        assert_eq!(lines[2].len(), w0);
    }

    #[test]
    fn trace_is_balanced_json_ish() {
        let cfg = SimConfig::paper_testbed(2);
        let r = simulate_iteration(&resnet50(), &cfg, Algo::DKfac);
        let json = to_chrome_trace(&r, 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
