//! Pluggable network models for the simulator.
//!
//! The scheduler (`sim::schedule`) issues collectives through the
//! [`NetworkModel`] trait instead of hard-coding one queue discipline:
//!
//! - [`SerializedQueue`] reproduces the historical behaviour exactly — one
//!   shared α-β link on which collectives execute in issue order (Horovod's
//!   single background thread), optionally with per-root egress links for
//!   broadcasts, and the fixed `overlap_penalty` comm–compute contention
//!   fixed-point. Flat-topology results are bit-identical to the pre-trait
//!   simulator.
//! - [`HierarchicalModel`] models the two-level testbed topology (Table I:
//!   `gpus_per_node` GPUs per NVLink/PCIe island, islands joined by an
//!   inter-node fabric). Transfers are *fluid*: each one owns a route of
//!   shared links, concurrent transfers crossing the same link split its
//!   bandwidth evenly, and the engine advances by progress-based event
//!   stepping — the fixed `overlap_penalty` scalar is replaced by actual
//!   link contention on the hierarchical paths.
//!
//! Topology choice is data ([`NetTopology`]), so configurations serialize
//! into benchmark rows; [`build`] turns a topology plus a
//! [`HardwareProfile`] into the executable model.

use std::collections::VecDeque;

use crate::graph::{Tag, TaskGraph, TaskSpan};
use crate::hardware::HardwareProfile;
use spdkfac_core::perf::AlphaBetaModel;
use spdkfac_obs::SpanMeta;

/// Parameters of the two-level hierarchical topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierSpec {
    /// GPUs per node (island size) — 4 on the paper's testbed.
    pub gpus_per_node: usize,
    /// Startup latency of one intra-island hop (seconds).
    pub alpha_intra: f64,
    /// Per-element cost of the intra-island links (s/element, fp32).
    pub beta_intra: f64,
}

impl HierSpec {
    /// NVLink/PCIe-class islands of `gpus_per_node` GPUs (the defaults the
    /// hardware calibration uses: β_intra = 2e-10 s/elem, α_intra = 50 µs).
    pub fn islands(gpus_per_node: usize) -> Self {
        HierSpec {
            gpus_per_node: gpus_per_node.max(1),
            alpha_intra: 5e-5,
            beta_intra: 2.0e-10,
        }
    }
}

/// How the simulated cluster's network is wired and scheduled.
///
/// This replaces the old `NetworkModel` enum (`Serialized` /
/// `PerRootParallel`): root-parallel broadcasting is now a property of the
/// flat topology, and the hierarchical variant subsumes both under real
/// link contention (DESIGN.md §4 records the deprecation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetTopology {
    /// One flat α-β network. With `root_parallel`, broadcasts from
    /// distinct roots get private egress links; all-reduces always share
    /// the global queue.
    Flat {
        /// Broadcasts from distinct roots may overlap each other.
        root_parallel: bool,
    },
    /// Two-level islands + fabric with fluid link contention.
    Hierarchical(HierSpec),
}

impl Default for NetTopology {
    fn default() -> Self {
        NetTopology::serialized()
    }
}

impl NetTopology {
    /// The historical default: one serialized collective queue.
    pub fn serialized() -> Self {
        NetTopology::Flat {
            root_parallel: false,
        }
    }

    /// Flat network with per-root broadcast egress links (the old
    /// `NetworkModel::PerRootParallel`).
    pub fn per_root_parallel() -> Self {
        NetTopology::Flat {
            root_parallel: true,
        }
    }

    /// Hierarchical topology with `gpus_per_node` GPUs per island and the
    /// default NVLink/PCIe-class intra-island links.
    pub fn hierarchical(gpus_per_node: usize) -> Self {
        NetTopology::Hierarchical(HierSpec::islands(gpus_per_node))
    }

    /// Stable identifier for benchmark rows.
    pub fn label(&self) -> String {
        match self {
            NetTopology::Flat {
                root_parallel: false,
            } => "flat".into(),
            NetTopology::Flat {
                root_parallel: true,
            } => "flat-root-parallel".into(),
            NetTopology::Hierarchical(s) => format!("hier{}", s.gpus_per_node),
        }
    }

    /// GPUs per node implied by the topology (1 for flat).
    pub fn gpus_per_node(&self) -> usize {
        match self {
            NetTopology::Flat { .. } => 1,
            NetTopology::Hierarchical(s) => s.gpus_per_node.max(1),
        }
    }
}

/// A network model: prices collectives at planning time and executes them
/// at simulation time.
///
/// The scheduler pushes collectives through `push_allreduce` /
/// `push_bcast` (which place tasks on graph resources and may record
/// routing state), then hands the finished graph to `execute`, which owns
/// the timing semantics — queueing, contention, event stepping.
pub trait NetworkModel {
    /// Human-readable name.
    fn name(&self) -> String;

    /// Total graph resources, including the `world` compute streams.
    fn num_resources(&self) -> usize;

    /// GPUs per island (1 = flat).
    fn gpus_per_node(&self) -> usize;

    /// Issues an all-reduce of `elems` fp32 elements. Returns the task id.
    fn push_allreduce(
        &mut self,
        g: &mut TaskGraph,
        elems: usize,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize;

    /// Issues a broadcast of one packed `dim × dim` factor from `root`.
    /// Returns the task id.
    fn push_bcast(
        &mut self,
        g: &mut TaskGraph,
        dim: usize,
        root: usize,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize;

    /// Runs the schedule under this model's timing semantics.
    fn execute(&self, g: &mut TaskGraph) -> Vec<TaskSpan>;

    /// Planning-time all-reduce cost model, as the fusion planner should
    /// see it (including any expected contention uplift).
    fn plan_allreduce(&self) -> AlphaBetaModel;

    /// Planning-time broadcast cost model, as the placement policy should
    /// see it.
    fn plan_bcast(&self) -> AlphaBetaModel;
}

/// Builds the executable network model for `topology` from `hw`'s
/// calibrated cost models (`hw` must already carry any wire/codec
/// adjustments).
pub fn build(topology: &NetTopology, hw: &HardwareProfile, world: usize) -> Box<dyn NetworkModel> {
    match topology {
        NetTopology::Flat { root_parallel } => Box::new(SerializedQueue::new(
            world,
            hw.allreduce,
            hw.bcast,
            hw.overlap_penalty,
            *root_parallel,
        )),
        NetTopology::Hierarchical(spec) => Box::new(HierarchicalModel::new(world, *spec, hw)),
    }
}

// ---------------------------------------------------------------------------
// Serialized queue (the historical model)
// ---------------------------------------------------------------------------

/// One shared α-β link; collectives run in issue order. Optionally one
/// private egress link per broadcast root. Timing is
/// [`simulate_with_contention`]'s fixed point over the `overlap_penalty`
/// scalar — exactly the pre-trait simulator.
#[derive(Debug, Clone)]
pub struct SerializedQueue {
    world: usize,
    allreduce: AlphaBetaModel,
    bcast: AlphaBetaModel,
    overlap_penalty: f64,
    root_parallel: bool,
}

impl SerializedQueue {
    /// Creates the queue over `world` GPUs.
    pub fn new(
        world: usize,
        allreduce: AlphaBetaModel,
        bcast: AlphaBetaModel,
        overlap_penalty: f64,
        root_parallel: bool,
    ) -> Self {
        SerializedQueue {
            world: world.max(1),
            allreduce,
            bcast,
            overlap_penalty,
            root_parallel,
        }
    }
}

impl NetworkModel for SerializedQueue {
    fn name(&self) -> String {
        if self.root_parallel {
            "flat-root-parallel".into()
        } else {
            "flat".into()
        }
    }

    fn num_resources(&self) -> usize {
        self.world + 1 + if self.root_parallel { self.world } else { 0 }
    }

    fn gpus_per_node(&self) -> usize {
        1
    }

    fn push_allreduce(
        &mut self,
        g: &mut TaskGraph,
        elems: usize,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize {
        g.push_meta(self.world, self.allreduce.time(elems), deps, tag, meta)
    }

    fn push_bcast(
        &mut self,
        g: &mut TaskGraph,
        dim: usize,
        root: usize,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize {
        let link = if self.root_parallel {
            self.world + 1 + root
        } else {
            self.world
        };
        g.push_meta(link, self.bcast.time_packed(dim), deps, tag, meta)
    }

    fn execute(&self, g: &mut TaskGraph) -> Vec<TaskSpan> {
        simulate_with_contention(g, self.overlap_penalty, self.world)
    }

    fn plan_allreduce(&self) -> AlphaBetaModel {
        // The paper fits its models from measurements taken during
        // training, which include compute contention.
        AlphaBetaModel::new(
            self.allreduce.alpha * (1.0 + self.overlap_penalty),
            self.allreduce.beta * (1.0 + self.overlap_penalty),
        )
    }

    fn plan_bcast(&self) -> AlphaBetaModel {
        self.bcast
    }
}

/// Simulates the graph under communication–computation contention: a
/// collective that overlaps busy compute streams for a fraction `f` of its
/// lifetime is stretched to `base · (1 + penalty · f)`. Solved by a short
/// fixed-point iteration (stretching comm moves it, which changes `f`).
pub(crate) fn simulate_with_contention(
    g: &mut TaskGraph,
    penalty: f64,
    network: usize,
) -> Vec<TaskSpan> {
    let base: Vec<f64> = g.tasks().iter().map(|t| t.duration).collect();
    let comm_ids: Vec<usize> = g
        .tasks()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.resource >= network)
        .map(|(i, _)| i)
        .collect();
    if penalty <= 0.0 || comm_ids.is_empty() {
        return g.simulate();
    }
    let mut spans = g.simulate();
    for _ in 0..4 {
        // Merged busy intervals of all compute streams.
        let mut busy: Vec<(f64, f64)> = spans
            .iter()
            .filter(|s| s.resource < network && s.end > s.start)
            .map(|s| (s.start, s.end))
            .collect();
        busy.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(busy.len());
        for (s, e) in busy {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        for &id in &comm_ids {
            let s = &spans[id];
            let len = s.end - s.start;
            let frac = if len > 0.0 {
                let ov: f64 = merged
                    .iter()
                    .map(|&(bs, be)| (s.end.min(be) - s.start.max(bs)).max(0.0))
                    .sum();
                (ov / len).clamp(0.0, 1.0)
            } else {
                0.0
            };
            g.set_duration(id, base[id] * (1.0 + penalty * frac));
        }
        spans = g.simulate();
    }
    spans
}

// ---------------------------------------------------------------------------
// Hierarchical fluid model
// ---------------------------------------------------------------------------

/// One bandwidth phase of a transfer: `work` seconds at full speed across
/// the `links` it occupies simultaneously.
#[derive(Debug, Clone)]
struct Segment {
    links: Vec<usize>,
    work: f64,
}

/// A collective as the fluid engine sees it: a latency phase followed by
/// sequential bandwidth segments.
#[derive(Debug, Clone)]
struct Transfer {
    alpha: f64,
    segments: Vec<Segment>,
}

/// Two-level topology with fluid shared-link contention.
///
/// Links: one per island (id `0..n_nodes`) plus the inter-node fabric
/// (id `n_nodes`). An all-reduce crosses every island then the fabric
/// (sharded by the island size, the §"hierarchical all-reduce" closed
/// form); a broadcast crosses its root's island then the fabric. When `k`
/// transfers occupy a link, each progresses at `1/k` of full speed;
/// transfers start as soon as their dependencies complete (no global
/// queue), so root-parallelism is emergent rather than a switch.
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    world: usize,
    spec: HierSpec,
    n_nodes: usize,
    allreduce_inter: AlphaBetaModel,
    bcast_inter: AlphaBetaModel,
    /// Task id → transfer route/work, filled during graph construction.
    transfers: std::collections::HashMap<usize, Transfer>,
}

impl HierarchicalModel {
    /// Creates the model over `world` GPUs grouped into `spec` islands;
    /// `hw` supplies the inter-node (NIC-bound) α-β models.
    pub fn new(world: usize, spec: HierSpec, hw: &HardwareProfile) -> Self {
        let world = world.max(1);
        let g = spec.gpus_per_node.clamp(1, world);
        let n_nodes = world.div_ceil(g);
        HierarchicalModel {
            world,
            spec: HierSpec {
                gpus_per_node: g,
                ..spec
            },
            n_nodes,
            allreduce_inter: hw.allreduce,
            bcast_inter: hw.bcast,
            transfers: std::collections::HashMap::new(),
        }
    }

    fn fabric_link(&self) -> usize {
        self.n_nodes
    }

    fn island_of(&self, gpu: usize) -> usize {
        gpu / self.spec.gpus_per_node
    }

    /// Closed-form (zero-contention) effective all-reduce model — the
    /// `HardwareProfile::with_hierarchical_allreduce` formula.
    fn allreduce_closed_form(&self) -> AlphaBetaModel {
        let g = self.spec.gpus_per_node as f64;
        let n = self.n_nodes as f64;
        let beta_eff = 2.0 * (g - 1.0) / g * self.spec.beta_intra
            + 2.0 * (n - 1.0) / n * self.allreduce_inter.beta / g;
        let alpha_eff = 2.0 * self.spec.alpha_intra + self.allreduce_inter.alpha;
        AlphaBetaModel::new(alpha_eff, beta_eff)
    }
}

impl NetworkModel for HierarchicalModel {
    fn name(&self) -> String {
        format!("hier{}", self.spec.gpus_per_node)
    }

    fn num_resources(&self) -> usize {
        // All transfers share one pseudo-resource id (`world`) for span
        // bookkeeping; actual timing comes from the fluid links.
        self.world + 1
    }

    fn gpus_per_node(&self) -> usize {
        self.spec.gpus_per_node
    }

    fn push_allreduce(
        &mut self,
        g: &mut TaskGraph,
        elems: usize,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize {
        let gpn = self.spec.gpus_per_node as f64;
        let n = self.n_nodes as f64;
        let m = elems as f64;
        let intra = m * 2.0 * (gpn - 1.0) / gpn * self.spec.beta_intra;
        let inter = m * 2.0 * (n - 1.0) / n * self.allreduce_inter.beta / gpn;
        let alpha = 2.0 * self.spec.alpha_intra + self.allreduce_inter.alpha;
        let solo = alpha + intra + inter;
        let id = g.push_meta(self.world, solo, deps, tag, meta);
        self.transfers.insert(
            id,
            Transfer {
                alpha,
                segments: vec![
                    Segment {
                        links: (0..self.n_nodes).collect(),
                        work: intra,
                    },
                    Segment {
                        links: vec![self.fabric_link()],
                        work: inter,
                    },
                ],
            },
        );
        id
    }

    fn push_bcast(
        &mut self,
        g: &mut TaskGraph,
        dim: usize,
        root: usize,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize {
        let tri = (dim * (dim + 1) / 2) as f64;
        let island = self.island_of(root.min(self.world - 1));
        let mut segments = vec![Segment {
            links: vec![island],
            work: tri * self.spec.beta_intra,
        }];
        let mut alpha = self.spec.alpha_intra;
        if self.n_nodes > 1 {
            alpha += self.bcast_inter.alpha;
            segments.push(Segment {
                links: vec![self.fabric_link()],
                work: tri * self.bcast_inter.beta,
            });
        }
        let solo = alpha + segments.iter().map(|s| s.work).sum::<f64>();
        let id = g.push_meta(self.world, solo, deps, tag, meta);
        self.transfers.insert(id, Transfer { alpha, segments });
        id
    }

    fn execute(&self, g: &mut TaskGraph) -> Vec<TaskSpan> {
        self.execute_fluid(g)
    }

    fn plan_allreduce(&self) -> AlphaBetaModel {
        // No overlap-penalty uplift: contention is simulated, not assumed.
        self.allreduce_closed_form()
    }

    fn plan_bcast(&self) -> AlphaBetaModel {
        if self.n_nodes > 1 {
            AlphaBetaModel::new(
                self.spec.alpha_intra + self.bcast_inter.alpha,
                self.spec.beta_intra + self.bcast_inter.beta,
            )
        } else {
            AlphaBetaModel::new(self.spec.alpha_intra, self.spec.beta_intra)
        }
    }
}

/// State of one in-flight transfer inside the fluid engine.
#[derive(Debug)]
struct ActiveTransfer {
    id: usize,
    latency_left: f64,
    seg: usize,
    work_left: f64,
}

impl HierarchicalModel {
    /// Progress-based event stepping over the task graph.
    ///
    /// Compute tasks keep the stream FIFO semantics of
    /// [`TaskGraph::simulate`] (strict issue order per resource); registered
    /// transfers instead start the moment their dependencies complete and
    /// share link bandwidth evenly with every other transfer currently on
    /// the same link. Between events all rates are constant, so the engine
    /// jumps to the next completion (compute end, latency expiry, or
    /// segment drain), updates remaining work, and re-solves the rates.
    fn execute_fluid(&self, g: &TaskGraph) -> Vec<TaskSpan> {
        const EPS: f64 = 1e-15;
        let tasks = g.tasks();
        let n = tasks.len();
        let n_links = self.n_nodes + 1;

        let mut dep_count: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(i);
            }
        }

        // Per-resource FIFO of compute tasks, in issue order.
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); g.num_resources()];
        for (i, t) in tasks.iter().enumerate() {
            if !self.transfers.contains_key(&i) {
                queues[t.resource].push_back(i);
            }
        }
        let mut res_busy = vec![false; g.num_resources()];

        let mut start = vec![0.0f64; n];
        let mut end = vec![0.0f64; n];
        let mut done = vec![false; n];
        let mut n_done = 0usize;

        // Min-heap of running compute completions, keyed by the bit pattern
        // of the (non-negative) end time — order-preserving for f64 ≥ 0.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut running: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut active: Vec<ActiveTransfer> = Vec::new();
        let mut t_now = 0.0f64;

        // Start every compute head / dependency-free transfer at t = 0.
        let start_compute =
            |r: usize,
             t_now: f64,
             queues: &mut Vec<VecDeque<usize>>,
             res_busy: &mut Vec<bool>,
             dep_count: &[usize],
             start: &mut Vec<f64>,
             running: &mut BinaryHeap<Reverse<(u64, usize)>>| {
                while !res_busy[r] {
                    let Some(&h) = queues[r].front() else { break };
                    if dep_count[h] > 0 {
                        break;
                    }
                    queues[r].pop_front();
                    start[h] = t_now;
                    res_busy[r] = true;
                    let t_end = t_now + tasks[h].duration;
                    running.push(Reverse((t_end.to_bits(), h)));
                }
            };
        for r in 0..g.num_resources() {
            start_compute(
                r,
                t_now,
                &mut queues,
                &mut res_busy,
                &dep_count,
                &mut start,
                &mut running,
            );
        }
        for (id, tr) in (0..n).filter_map(|i| self.transfers.get(&i).map(|t| (i, t))) {
            if dep_count[id] == 0 {
                start[id] = t_now;
                active.push(ActiveTransfer {
                    id,
                    latency_left: tr.alpha,
                    seg: 0,
                    work_left: tr.segments.first().map_or(0.0, |s| s.work),
                });
            }
        }

        while n_done < n {
            // Fair-share rates: a transfer past its latency phase runs at
            // the reciprocal of the most-contended link on its segment.
            let mut usage = vec![0u32; n_links];
            for a in &active {
                if a.latency_left <= 0.0 {
                    for &l in &self.transfers[&a.id].segments[a.seg].links {
                        usage[l] += 1;
                    }
                }
            }
            let share = |a: &ActiveTransfer| -> f64 {
                self.transfers[&a.id].segments[a.seg]
                    .links
                    .iter()
                    .map(|&l| usage[l])
                    .max()
                    .unwrap_or(1)
                    .max(1) as f64
            };

            // Next event: earliest compute end, latency expiry, or drain.
            let mut t_next = running
                .peek()
                .map(|Reverse((bits, _))| f64::from_bits(*bits))
                .unwrap_or(f64::INFINITY);
            for a in &active {
                let cand = if a.latency_left > 0.0 {
                    t_now + a.latency_left
                } else {
                    t_now + a.work_left * share(a)
                };
                t_next = t_next.min(cand);
            }
            assert!(
                t_next.is_finite(),
                "fluid engine deadlock: {} of {} tasks stuck",
                n - n_done,
                n
            );
            let dt = (t_next - t_now).max(0.0);

            // Advance in-flight transfers by dt.
            for a in &mut active {
                if a.latency_left > 0.0 {
                    a.latency_left -= dt;
                    if a.latency_left < EPS {
                        a.latency_left = 0.0;
                    }
                } else {
                    let mu = self.transfers[&a.id].segments[a.seg]
                        .links
                        .iter()
                        .map(|&l| usage[l])
                        .max()
                        .unwrap_or(1)
                        .max(1) as f64;
                    a.work_left -= dt / mu;
                }
            }
            t_now = t_next;

            // Complete compute tasks due now.
            let mut finished: Vec<usize> = Vec::new();
            while let Some(&Reverse((bits, id))) = running.peek() {
                if f64::from_bits(bits) <= t_now + EPS {
                    running.pop();
                    finished.push(id);
                } else {
                    break;
                }
            }
            for id in finished {
                done[id] = true;
                n_done += 1;
                end[id] = t_now;
                res_busy[tasks[id].resource] = false;
                for &j in &dependents[id] {
                    dep_count[j] -= 1;
                }
                // Wake the freed stream and any stream whose head unblocked.
                start_compute(
                    tasks[id].resource,
                    t_now,
                    &mut queues,
                    &mut res_busy,
                    &dep_count,
                    &mut start,
                    &mut running,
                );
                for &j in &dependents[id] {
                    if dep_count[j] == 0 {
                        if let Some(tr) = self.transfers.get(&j) {
                            start[j] = t_now;
                            active.push(ActiveTransfer {
                                id: j,
                                latency_left: tr.alpha,
                                seg: 0,
                                work_left: tr.segments.first().map_or(0.0, |s| s.work),
                            });
                        } else {
                            start_compute(
                                tasks[j].resource,
                                t_now,
                                &mut queues,
                                &mut res_busy,
                                &dep_count,
                                &mut start,
                                &mut running,
                            );
                        }
                    }
                }
            }

            // Drain transfer segments due now (possibly cascading through
            // zero-work segments), completing transfers that ran dry.
            let mut completed: Vec<usize> = Vec::new();
            for a in &mut active {
                if a.latency_left > 0.0 {
                    continue;
                }
                let segs = &self.transfers[&a.id].segments;
                while a.work_left <= EPS {
                    a.seg += 1;
                    if a.seg >= segs.len() {
                        completed.push(a.id);
                        break;
                    }
                    a.work_left = segs[a.seg].work;
                }
            }
            if !completed.is_empty() {
                active.retain(|a| !completed.contains(&a.id));
                for id in completed {
                    done[id] = true;
                    n_done += 1;
                    end[id] = t_now;
                    for &j in &dependents[id] {
                        dep_count[j] -= 1;
                    }
                    for &j in &dependents[id] {
                        if dep_count[j] == 0 {
                            if let Some(tr) = self.transfers.get(&j) {
                                start[j] = t_now;
                                active.push(ActiveTransfer {
                                    id: j,
                                    latency_left: tr.alpha,
                                    seg: 0,
                                    work_left: tr.segments.first().map_or(0.0, |s| s.work),
                                });
                            } else {
                                start_compute(
                                    tasks[j].resource,
                                    t_now,
                                    &mut queues,
                                    &mut res_busy,
                                    &dep_count,
                                    &mut start,
                                    &mut running,
                                );
                            }
                        }
                    }
                }
            }
        }

        tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TaskSpan {
                start: start[i],
                end: end[i],
                resource: t.resource,
                tag: t.tag,
                meta: t.meta,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareProfile {
        HardwareProfile::rtx2080ti_ib100()
    }

    fn hier(world: usize, gpn: usize) -> HierarchicalModel {
        HierarchicalModel::new(world, HierSpec::islands(gpn), &hw())
    }

    #[test]
    fn hierarchical_allreduce_matches_closed_form_at_zero_contention() {
        // One all-reduce alone on the wire must take exactly what the
        // `with_hierarchical_allreduce` closed form predicts.
        let spec = HierSpec::islands(4);
        let mut net = hier(64, 4);
        let reference = hw().with_hierarchical_allreduce(4, 64, spec.beta_intra, spec.alpha_intra);
        for elems in [1usize, 10_000, 2_500_000, 77_000_000] {
            let mut g = TaskGraph::new(net.num_resources());
            let id = net.push_allreduce(&mut g, elems, &[], Tag::FactorComm, SpanMeta::default());
            let spans = net.execute(&mut g);
            let got = spans[id].end - spans[id].start;
            let want = reference.allreduce.time(elems);
            assert!(
                (got - want).abs() < 1e-12,
                "{elems} elems: fluid {got:.9} vs closed form {want:.9}"
            );
        }
    }

    #[test]
    fn two_transfers_on_one_shared_link_each_take_about_twice_solo() {
        // Two broadcasts rooted on the same island contend on both the
        // island link and the fabric: in the fluid model each runs at half
        // speed the whole way, so both finish at α + 2·(work).
        let mut net = hier(64, 4);
        let d = 2048usize;
        let mut g1 = TaskGraph::new(net.num_resources());
        let solo_id = net.push_bcast(&mut g1, d, 0, &[], Tag::InverseComm, SpanMeta::default());
        let solo = {
            let spans = net.execute(&mut g1);
            spans[solo_id].end - spans[solo_id].start
        };
        let mut net2 = hier(64, 4);
        let mut g2 = TaskGraph::new(net2.num_resources());
        let a = net2.push_bcast(&mut g2, d, 0, &[], Tag::InverseComm, SpanMeta::default());
        let b = net2.push_bcast(&mut g2, d, 1, &[], Tag::InverseComm, SpanMeta::default());
        let spans = net2.execute(&mut g2);
        let alpha = net2.spec.alpha_intra + net2.bcast_inter.alpha;
        for id in [a, b] {
            let took = spans[id].end - spans[id].start;
            let want = alpha + 2.0 * (solo - alpha);
            assert!(
                (took - want).abs() < 1e-12,
                "contended bcast {took:.9} vs 2x-solo {want:.9}"
            );
        }
    }

    #[test]
    fn cross_island_broadcasts_overlap_their_island_phases() {
        // Roots on different islands only share the fabric, so they finish
        // strictly earlier than two same-island broadcasts.
        let d = 2048usize;
        let run = |roots: [usize; 2]| {
            let mut net = hier(64, 4);
            let mut g = TaskGraph::new(net.num_resources());
            let mut ids = Vec::new();
            for r in roots {
                ids.push(net.push_bcast(&mut g, d, r, &[], Tag::InverseComm, SpanMeta::default()));
            }
            let spans = net.execute(&mut g);
            ids.iter().map(|&i| spans[i].end).fold(0.0, f64::max)
        };
        let same_island = run([0, 1]);
        let cross_island = run([0, 4]);
        assert!(
            cross_island < same_island,
            "cross-island {cross_island:.9} !< same-island {same_island:.9}"
        );
    }

    #[test]
    fn fluid_engine_respects_dependencies_and_stream_order() {
        // compute(0) -> bcast -> compute(0): the transfer waits for its
        // producer; the dependent compute waits for the transfer; stream
        // order holds for the unrelated second task on the same stream.
        let mut net = hier(8, 4);
        let mut g = TaskGraph::new(net.num_resources());
        let c0 = g.push(0, 1e-3, &[], Tag::InverseComp);
        let bc = net.push_bcast(&mut g, 512, 0, &[c0], Tag::InverseComm, SpanMeta::default());
        let c1 = g.push(0, 2e-3, &[], Tag::FfBp);
        let c2 = g.push(1, 1e-3, &[bc], Tag::Other);
        let spans = net.execute(&mut g);
        assert!((spans[bc].start - spans[c0].end).abs() < 1e-12);
        assert!((spans[c1].start - spans[c0].end).abs() < 1e-12);
        assert!(spans[c2].start >= spans[bc].end - 1e-12);
    }

    #[test]
    fn serialized_queue_matches_direct_graph_costs() {
        // The flat model's pushes are plain α-β durations on the shared
        // link, and its planning models carry the contention uplift the
        // legacy planner used.
        let mut net =
            SerializedQueue::new(4, hw().allreduce, hw().bcast, hw().overlap_penalty, false);
        let mut g = TaskGraph::new(net.num_resources());
        let ar = net.push_allreduce(&mut g, 1000, &[], Tag::GradComm, SpanMeta::default());
        let bc = net.push_bcast(&mut g, 100, 2, &[], Tag::InverseComm, SpanMeta::default());
        assert_eq!(g.tasks()[ar].resource, 4);
        assert_eq!(g.tasks()[bc].resource, 4);
        assert!((g.tasks()[ar].duration - hw().allreduce.time(1000)).abs() < 1e-15);
        assert!((g.tasks()[bc].duration - hw().bcast.time_packed(100)).abs() < 1e-15);
        let plan = net.plan_allreduce();
        assert!((plan.alpha - hw().allreduce.alpha * 1.6).abs() < 1e-15);
        assert_eq!(net.plan_bcast(), hw().bcast);
    }

    #[test]
    fn topology_labels_are_stable() {
        assert_eq!(NetTopology::serialized().label(), "flat");
        assert_eq!(
            NetTopology::per_root_parallel().label(),
            "flat-root-parallel"
        );
        assert_eq!(NetTopology::hierarchical(4).label(), "hier4");
        assert_eq!(NetTopology::hierarchical(4).gpus_per_node(), 4);
        assert_eq!(NetTopology::serialized().gpus_per_node(), 1);
    }

    #[test]
    fn build_dispatches_on_topology() {
        let flat = build(&NetTopology::serialized(), &hw(), 8);
        assert_eq!(flat.num_resources(), 9);
        let rp = build(&NetTopology::per_root_parallel(), &hw(), 8);
        assert_eq!(rp.num_resources(), 17);
        let h = build(&NetTopology::hierarchical(4), &hw(), 8);
        assert_eq!(h.num_resources(), 9);
        assert_eq!(h.gpus_per_node(), 4);
    }
}
