//! Stream-ordered task-graph simulation.
//!
//! Tasks are issued to *resources* (GPU compute streams, the shared
//! network). A resource executes its tasks strictly in issue order; a task
//! additionally waits for its dependencies and an optional earliest-start
//! time. This matches CUDA stream semantics and Horovod's single collective
//! queue, and makes simulation a single deterministic forward pass over the
//! issue order.

use spdkfac_obs::SpanMeta;

/// Category of a task, used for the Fig. 2 / Fig. 9 breakdown accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Feed-forward and back-propagation compute (green blocks in Fig. 1).
    FfBp,
    /// Gradient all-reduce (light brown).
    GradComm,
    /// Kronecker-factor construction compute (blue).
    FactorComp,
    /// Kronecker-factor all-reduce (dark brown).
    FactorComm,
    /// Matrix-inversion compute (the `f(T_i)` of §IV-B).
    InverseComp,
    /// Inverse-result broadcast (red).
    InverseComm,
    /// Anything else (preconditioning, update).
    Other,
}

impl Tag {
    /// `true` for network (communication) tags.
    pub fn is_comm(self) -> bool {
        matches!(self, Tag::GradComm | Tag::FactorComm | Tag::InverseComm)
    }

    /// The shared observability [`Phase`](spdkfac_obs::Phase) this tag maps
    /// to (`Other` ↔ `Update`); measured and simulated timelines use the
    /// same categories.
    pub fn phase(self) -> spdkfac_obs::Phase {
        use spdkfac_obs::Phase;
        match self {
            Tag::FfBp => Phase::FfBp,
            Tag::GradComm => Phase::GradComm,
            Tag::FactorComp => Phase::FactorComp,
            Tag::FactorComm => Phase::FactorComm,
            Tag::InverseComp => Phase::InverseComp,
            Tag::InverseComm => Phase::InverseComm,
            Tag::Other => Phase::Update,
        }
    }
}

/// Converts simulated spans into the shared observability span type (track =
/// resource id), for the shared exporters and breakdown attribution. Span
/// metadata (collective edge/seq/size/generation) is carried through, so the
/// causal analyzer resolves simulated collectives exactly like measured
/// ones.
pub fn to_obs_spans(spans: &[TaskSpan]) -> Vec<spdkfac_obs::Span> {
    spans
        .iter()
        .map(|s| spdkfac_obs::Span {
            track: s.resource,
            phase: s.tag.phase(),
            label: std::borrow::Cow::Borrowed(""),
            start: s.start,
            end: s.end,
            meta: s.meta,
        })
        .collect()
}

/// A task issued to a resource.
#[derive(Debug, Clone)]
pub struct Task {
    /// Resource the task occupies (index into the graph's resource set).
    pub resource: usize,
    /// Execution time (seconds).
    pub duration: f64,
    /// Task ids that must complete before this task starts. Must all be
    /// smaller than this task's id (issue order is causal).
    pub deps: Vec<usize>,
    /// Breakdown category.
    pub tag: Tag,
    /// Collective metadata (edge/seq/size/generation) mirrored onto the
    /// produced span; default for compute tasks.
    pub meta: SpanMeta,
}

/// Computed schedule of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Resource the task ran on.
    pub resource: usize,
    /// Category.
    pub tag: Tag,
    /// Collective metadata inherited from the task.
    pub meta: SpanMeta,
}

/// An append-only task graph over a fixed set of resources.
///
/// # Example
///
/// ```
/// use spdkfac_sim::graph::{Tag, TaskGraph};
///
/// let mut g = TaskGraph::new(2); // one GPU stream + one network
/// let a = g.push(0, 1.0, &[], Tag::FfBp);
/// let b = g.push(1, 0.5, &[a], Tag::GradComm); // comm waits for compute
/// let spans = g.simulate();
/// assert_eq!(spans[b].start, 1.0);
/// assert_eq!(spans[b].end, 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    num_resources: usize,
}

impl TaskGraph {
    /// Creates a graph over `num_resources` resources.
    pub fn new(num_resources: usize) -> Self {
        TaskGraph {
            tasks: Vec::new(),
            num_resources,
        }
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of tasks issued so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no tasks have been issued.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Issues a task; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `resource` is out of range, `duration` is negative/NaN, or
    /// any dependency id is not smaller than the new task's id.
    pub fn push(&mut self, resource: usize, duration: f64, deps: &[usize], tag: Tag) -> usize {
        self.push_meta(resource, duration, deps, tag, SpanMeta::default())
    }

    /// As [`TaskGraph::push`], attaching collective metadata that the
    /// produced span (and its observability conversion) will carry.
    ///
    /// # Panics
    ///
    /// As [`TaskGraph::push`].
    pub fn push_meta(
        &mut self,
        resource: usize,
        duration: f64,
        deps: &[usize],
        tag: Tag,
        meta: SpanMeta,
    ) -> usize {
        assert!(
            resource < self.num_resources,
            "resource {resource} out of range"
        );
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid duration {duration}"
        );
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependency {d} must precede task {id}");
        }
        self.tasks.push(Task {
            resource,
            duration,
            deps: deps.to_vec(),
            tag,
            meta,
        });
        id
    }

    /// Borrow the issued tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Overrides the duration of task `id` (used by the communication
    /// contention fixed-point in `schedule`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `duration` is negative/NaN.
    pub fn set_duration(&mut self, id: usize, duration: f64) {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid duration {duration}"
        );
        self.tasks[id].duration = duration;
    }

    /// Runs the simulation: each task starts at
    /// `max(resource free time, dependency ends)` in issue order.
    pub fn simulate(&self) -> Vec<TaskSpan> {
        let mut resource_free = vec![0.0f64; self.num_resources];
        let mut spans = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            let dep_ready = t
                .deps
                .iter()
                .map(|&d| {
                    let s: &TaskSpan = &spans[d];
                    s.end
                })
                .fold(0.0f64, f64::max);
            let start = dep_ready.max(resource_free[t.resource]);
            let end = start + t.duration;
            resource_free[t.resource] = end;
            spans.push(TaskSpan {
                start,
                end,
                resource: t.resource,
                tag: t.tag,
                meta: t.meta,
            });
        }
        spans
    }

    /// Completion time of the whole graph (0 for an empty graph).
    pub fn makespan(&self) -> f64 {
        self.simulate().iter().map(|s| s.end).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_tasks_on_one_resource() {
        let mut g = TaskGraph::new(1);
        g.push(0, 1.0, &[], Tag::FfBp);
        g.push(0, 2.0, &[], Tag::FfBp);
        let s = g.simulate();
        assert_eq!(s[0].end, 1.0);
        assert_eq!(s[1].start, 1.0);
        assert_eq!(s[1].end, 3.0);
        assert_eq!(g.makespan(), 3.0);
    }

    #[test]
    fn parallel_resources_overlap() {
        let mut g = TaskGraph::new(2);
        g.push(0, 3.0, &[], Tag::FfBp);
        g.push(1, 2.0, &[], Tag::GradComm);
        let s = g.simulate();
        assert_eq!(s[0].start, 0.0);
        assert_eq!(s[1].start, 0.0);
        assert_eq!(g.makespan(), 3.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut g = TaskGraph::new(2);
        let a = g.push(0, 2.0, &[], Tag::FfBp);
        let b = g.push(1, 1.0, &[a], Tag::GradComm);
        let s = g.simulate();
        assert_eq!(s[b].start, 2.0);
    }

    #[test]
    fn cross_resource_diamond() {
        // c depends on both a (res 0) and b (res 1); d queues behind c.
        let mut g = TaskGraph::new(2);
        let a = g.push(0, 1.0, &[], Tag::FfBp);
        let b = g.push(1, 5.0, &[], Tag::GradComm);
        let c = g.push(0, 1.0, &[a, b], Tag::FactorComp);
        let d = g.push(0, 1.0, &[], Tag::FactorComp);
        let s = g.simulate();
        assert_eq!(s[c].start, 5.0);
        assert_eq!(s[d].start, 6.0); // stream order, even without deps
    }

    #[test]
    fn zero_duration_tasks_are_fine() {
        let mut g = TaskGraph::new(1);
        let a = g.push(0, 0.0, &[], Tag::Other);
        let s = g.simulate();
        assert_eq!(s[a].start, s[a].end);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new(1);
        g.push(0, 1.0, &[0], Tag::FfBp);
    }

    #[test]
    fn makespan_monotone_in_durations() {
        // Longer tasks can never shorten the schedule (sanity property).
        let build = |scale: f64| {
            let mut g = TaskGraph::new(3);
            let mut prev = None;
            for i in 0..10 {
                let deps: Vec<usize> = prev.into_iter().collect();
                let id = g.push(i % 3, 1.0 * scale + i as f64 * 0.1, &deps, Tag::FfBp);
                prev = Some(id);
            }
            g.makespan()
        };
        assert!(build(2.0) >= build(1.0));
    }
}
