//! Hardware cost models for the simulated testbed.

use spdkfac_core::perf::{AlphaBetaModel, ExpInverseModel};
use spdkfac_models::LayerSpec;

/// Cost models of one cluster configuration.
///
/// All communication models take message sizes in **fp32 elements** (the
/// paper communicates fp32 tensors; Eq. 14's `m` is an element count).
/// Compute models convert FLOPs to seconds through effective throughputs
/// plus a per-kernel launch overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Profile name for reports.
    pub name: String,
    /// Effective FLOP/s of forward/backward GEMM-like kernels.
    pub gemm_flops: f64,
    /// Effective FLOP/s of the factor-construction kernels (`aᵀa`, `gᵀg`).
    pub factor_flops: f64,
    /// Per-kernel launch/framework overhead (seconds).
    pub kernel_overhead: f64,
    /// All-reduce cost model (Eq. 14), fitted at the cluster's GPU count.
    pub allreduce: AlphaBetaModel,
    /// Broadcast cost model (Eq. 27).
    pub bcast: AlphaBetaModel,
    /// Matrix-inversion cost model (Eq. 26).
    pub inverse: ExpInverseModel,
    /// Communication–computation contention: a collective whose transfer
    /// fully overlaps busy compute streams takes `1 + overlap_penalty`
    /// times its idle-network duration (NCCL rings share SMs and PCIe with
    /// compute kernels and reach only part of their idle bandwidth).
    pub overlap_penalty: f64,
}

impl HardwareProfile {
    /// The paper's testbed (Table I): 16 nodes × 4 RTX 2080 Ti, 100 Gb/s
    /// InfiniBand, NCCL-2.4.7/Horovod.
    ///
    /// Constants are calibrated against the paper's published anchors
    /// (Fig. 2's 292 ms D-KFAC inverse compute, ≈51 ms MPD-KFAC inverse
    /// compute, ≈134 ms MPD-KFAC inverse broadcast, KFAC ≈ 4× SGD on a
    /// single GPU) — the calibration table lives in EXPERIMENTS.md.
    pub fn rtx2080ti_ib100() -> Self {
        HardwareProfile {
            name: "16x4 RTX2080Ti, 100Gb/s IB".into(),
            // 13.4 TFLOPS peak fp32; ~40% effective for cuDNN convs.
            gemm_flops: 5.4e12,
            // Skinny symmetric rank-k updates reach lower efficiency.
            factor_flops: 3.0e12,
            kernel_overhead: 6.0e-5,
            // Ring all-reduce over 64 GPUs: 4 GPUs share one 100 Gb NIC,
            // effective bus bandwidth ≈ 2 GB/s per rank ⇒ β ≈ 2e-9 s/elem.
            allreduce: AlphaBetaModel::new(7.0e-4, 2.0e-9),
            // Broadcast: per-op cost dominated by Horovod's negotiation /
            // launch overhead (α ≈ 0.8 ms) plus tree bandwidth. Calibrated
            // so that MPD-KFAC's 108 serial ResNet-50 inverse broadcasts
            // cost ≈134 ms (Fig. 2): 108·α + 77.2M·β = 134 ms.
            bcast: AlphaBetaModel::new(8.0e-4, 6.2e-10),
            // Cholesky-inverse on a 2080 Ti via cuSolver (Fig. 8 fit),
            // calibrated so that inverting all 108 ResNet-50 factors takes
            // 292 ms (Fig. 2, D-KFAC) and the round-robin max-GPU share on
            // 64 GPUs is ≈51 ms (Fig. 2, MPD-KFAC).
            inverse: ExpInverseModel::new(4.4e-4, 1.05e-3),
            overlap_penalty: 0.6,
        }
    }

    /// Rescales the communication models from the calibration point
    /// (64 GPUs) to a cluster of `world` GPUs:
    ///
    /// - ring all-reduce moves `2(P−1)/P` bytes per rank ⇒ β scales by
    ///   `((P−1)/P) / (63/64)`;
    /// - startup latencies grow with the ring/tree depth ⇒ α scales by
    ///   `(1 + log₂P) / (1 + log₂64)` (with a floor at P = 1).
    ///
    /// At `world == 64` this is the identity, so all Table III calibration
    /// anchors are preserved.
    pub fn scaled_to_world(&self, world: usize) -> HardwareProfile {
        let p = world.max(1) as f64;
        let ring = ((p - 1.0) / p) / (63.0 / 64.0);
        let depth = (1.0 + p.log2().max(0.0)) / (1.0 + 6.0);
        HardwareProfile {
            name: format!("{} @ {world} GPUs", self.name),
            allreduce: AlphaBetaModel::new(
                self.allreduce.alpha * depth,
                self.allreduce.beta * ring,
            ),
            bcast: AlphaBetaModel::new(self.bcast.alpha * depth, self.bcast.beta),
            ..self.clone()
        }
    }

    /// A single-GPU profile sharing the compute models (for the SGD/KFAC
    /// single-device bars of Fig. 2).
    pub fn single_gpu(&self) -> HardwareProfile {
        HardwareProfile {
            name: format!("{} (single GPU)", self.name),
            allreduce: AlphaBetaModel::new(0.0, 0.0),
            bcast: AlphaBetaModel::new(0.0, 0.0),
            ..self.clone()
        }
    }

    /// Forward compute time of one layer at batch size `batch`.
    pub fn ff_time(&self, layer: &LayerSpec, batch: usize) -> f64 {
        layer.fwd_flops(batch) / self.gemm_flops + self.kernel_overhead
    }

    /// Backward compute time of one layer at batch size `batch`.
    pub fn bp_time(&self, layer: &LayerSpec, batch: usize) -> f64 {
        layer.bwd_flops(batch) / self.gemm_flops + self.kernel_overhead
    }

    /// Time to build the Kronecker factor `A` of one layer.
    pub fn factor_a_time(&self, layer: &LayerSpec, batch: usize) -> f64 {
        layer.factor_a_flops(batch) / self.factor_flops + self.kernel_overhead
    }

    /// Time to build the Kronecker factor `G` of one layer.
    pub fn factor_g_time(&self, layer: &LayerSpec, batch: usize) -> f64 {
        layer.factor_g_flops(batch) / self.factor_flops + self.kernel_overhead
    }

    /// Time to invert one damped `d × d` factor (Eq. 26).
    pub fn inverse_time(&self, d: usize) -> f64 {
        self.inverse.time(d)
    }

    /// Replaces the all-reduce model with a two-level (hierarchical) ring —
    /// intra-node reduce-scatter/all-gather over NVLink/PCIe plus an
    /// inter-node ring over the NIC — matching the testbed's 16 × 4 topology
    /// (NCCL's tree/hierarchical algorithms). Effective per-element cost:
    ///
    /// `β_eff = 2(g−1)/g·β_intra + 2(n−1)/n·β_inter/g`
    ///
    /// for `g` GPUs per node and `n` nodes; startup pays one intra and one
    /// inter latency on each side of the inter-node phase.
    pub fn with_hierarchical_allreduce(
        &self,
        gpus_per_node: usize,
        world: usize,
        beta_intra: f64,
        alpha_intra: f64,
    ) -> HardwareProfile {
        let g = gpus_per_node.max(1).min(world.max(1)) as f64;
        let n = (world.max(1) as f64 / g).max(1.0);
        let beta_inter = self.allreduce.beta; // NIC-bound per-element cost
        let beta_eff = 2.0 * (g - 1.0) / g * beta_intra + 2.0 * (n - 1.0) / n * beta_inter / g;
        let alpha_eff = 2.0 * alpha_intra + self.allreduce.alpha;
        HardwareProfile {
            name: format!("{} (hierarchical {gpus_per_node}/node)", self.name),
            allreduce: AlphaBetaModel::new(alpha_eff, beta_eff),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_models::resnet50;

    #[test]
    fn resnet50_sgd_iteration_in_plausible_range() {
        // FF+BP of ResNet-50 at batch 32 on a 2080 Ti is ~0.1 s in practice.
        let hw = HardwareProfile::rtx2080ti_ib100();
        let m = resnet50();
        let t: f64 = m
            .layers()
            .iter()
            .map(|l| hw.ff_time(l, 32) + hw.bp_time(l, 32))
            .sum();
        assert!(t > 0.05 && t < 0.25, "FF&BP time {t:.4}s out of range");
    }

    #[test]
    fn inverse_model_matches_paper_dkfac_anchor() {
        // Fig. 2: inverting all 108 ResNet-50 factors locally ≈ 292 ms.
        let hw = HardwareProfile::rtx2080ti_ib100();
        let m = resnet50();
        let t: f64 = m
            .all_factor_dims()
            .iter()
            .map(|&d| hw.inverse_time(d))
            .sum();
        assert!(
            (t - 0.292).abs() < 0.08,
            "D-KFAC inverse compute {t:.3}s vs paper 0.292s"
        );
    }

    #[test]
    fn factor_allreduce_cost_dominates_gradient_cost() {
        // §III-A: factor traffic (~77M elements) ≫ gradient traffic (25.6M).
        let hw = HardwareProfile::rtx2080ti_ib100();
        let m = resnet50();
        let factor_elems = m.total_packed_a() + m.total_packed_g();
        let t_factor = hw.allreduce.time(factor_elems);
        let t_grad = hw.allreduce.time(m.total_params());
        assert!(t_factor > 2.0 * t_grad);
    }

    #[test]
    fn single_gpu_profile_has_free_comm() {
        let hw = HardwareProfile::rtx2080ti_ib100().single_gpu();
        assert_eq!(hw.allreduce.time(1_000_000), 0.0);
        assert_eq!(hw.bcast.time_packed(4096), 0.0);
    }

    #[test]
    fn hierarchical_allreduce_beats_flat_ring_with_fast_intra_links() {
        // 4 GPUs/node with PCIe-speed intra links (β_intra ≪ β_inter):
        // sharding the inter-node phase by g cuts the dominant term by ~4×.
        let flat = HardwareProfile::rtx2080ti_ib100();
        let hier = flat.with_hierarchical_allreduce(4, 64, 2.0e-10, 5e-5);
        let m = 10_000_000;
        assert!(
            hier.allreduce.time(m) < flat.allreduce.time(m),
            "hierarchical {:.4} !< flat {:.4}",
            hier.allreduce.time(m),
            flat.allreduce.time(m)
        );
        // The inter-node phase shards by g, but intra-node traffic remains:
        // the net large-message win at g = 4 sits around 1.5-2x.
        let ratio = flat.allreduce.beta / hier.allreduce.beta;
        assert!((1.2..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scaled_to_world_is_identity_at_calibration_point() {
        let hw = HardwareProfile::rtx2080ti_ib100();
        let same = hw.scaled_to_world(64);
        assert!((same.allreduce.alpha - hw.allreduce.alpha).abs() < 1e-15);
        assert!((same.allreduce.beta - hw.allreduce.beta).abs() < 1e-20);
        // Smaller clusters move fewer bytes per rank.
        let small = hw.scaled_to_world(4);
        assert!(small.allreduce.beta < hw.allreduce.beta);
        assert!(small.allreduce.alpha < hw.allreduce.alpha);
    }

    #[test]
    fn kernel_overhead_bounds_small_layers() {
        let hw = HardwareProfile::rtx2080ti_ib100();
        let l = LayerSpec::linear("fc", 8, 8);
        assert!(hw.ff_time(&l, 1) >= hw.kernel_overhead);
    }
}
