//! Placement policies for the inverse phase, beyond the paper's own.
//!
//! `core::placement` defines the [`PlacementPolicy`] trait and implements
//! the paper's strategies (Non-Dist, Seq-Dist, LBP). This module adds the
//! competitors the scaling study benchmarks them against:
//!
//! - [`HeftPolicy`] — HEFT-style earliest-finish-time list scheduling: each
//!   communicated tensor goes to the GPU that minimizes its *finish* time
//!   (compute queue + the shared broadcast queue), not just the compute
//!   load.
//! - [`MemoryAwarePolicy`] — balances the packed-triangular bytes resident
//!   per GPU, the constraint that binds before compute does on
//!   memory-tight clusters.
//! - [`TopologyAwarePolicy`] — hierarchical-topology aware: spreads load
//!   across islands first and keeps a layer's symmetric Kronecker pair
//!   (`A_i`, `G_i`) on one island so their broadcasts share the cheap
//!   intra-island link.
//!
//! [`PolicyHandle`] is the clonable, debuggable handle `SimConfig` stores;
//! [`policy_registry`] enumerates everything the `bench_scale` sweep runs.

use std::fmt;
use std::sync::Arc;

use spdkfac_core::placement::{
    Placement, PlacementContext, PlacementPolicy, PlacementStrategy, TensorAssignment,
};

/// Clonable, debuggable handle to a placement policy, for storage inside
/// `SimConfig` (which derives `Debug` + `Clone`).
#[derive(Clone)]
pub struct PolicyHandle(Arc<dyn PlacementPolicy>);

impl PolicyHandle {
    /// Wraps a policy.
    pub fn new(policy: impl PlacementPolicy + 'static) -> Self {
        PolicyHandle(Arc::new(policy))
    }

    /// Wraps one of the paper's strategies.
    pub fn strategy(s: PlacementStrategy) -> Self {
        PolicyHandle::new(s)
    }

    /// The policy's name.
    pub fn name(&self) -> String {
        self.0.name()
    }

    /// Runs the policy.
    pub fn place(&self, ctx: &PlacementContext<'_>) -> Placement {
        self.0.place(ctx)
    }
}

impl fmt::Debug for PolicyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PolicyHandle").field(&self.0.name()).finish()
    }
}

impl<P: PlacementPolicy + 'static> From<P> for PolicyHandle {
    fn from(p: P) -> Self {
        PolicyHandle::new(p)
    }
}

impl std::ops::Deref for PolicyHandle {
    type Target = dyn PlacementPolicy;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

/// NCT rule shared with LBP (Algorithm 1): a tensor is replicated when
/// inverting it everywhere is cheaper than broadcasting it once.
fn is_nct(ctx: &PlacementContext<'_>, d: usize) -> bool {
    ctx.comp.time(d) < ctx.comm.time_packed(d)
}

/// Communicated tensors in deterministic scheduling order: largest modeled
/// inverse first (the flat-DAG analogue of HEFT's upward rank), index as
/// the tie-break.
fn cts_by_desc_cost(ctx: &PlacementContext<'_>) -> Vec<usize> {
    let mut cts: Vec<usize> = (0..ctx.dims.len())
        .filter(|&i| !is_nct(ctx, ctx.dims[i]))
        .collect();
    cts.sort_by(|&a, &b| ctx.dims[b].cmp(&ctx.dims[a]).then(a.cmp(&b)));
    cts
}

/// HEFT-style earliest-finish-time placement.
///
/// Tensors are scheduled largest-first; each goes to the GPU minimizing its
/// modeled finish time — own compute queue, then the broadcast on a
/// serialized network queue. Unlike LBP's load buckets, the shared queue
/// makes the policy account for broadcasts from *other* GPUs delaying this
/// tensor's fan-out.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeftPolicy;

impl PlacementPolicy for HeftPolicy {
    fn name(&self) -> String {
        "heft".into()
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Placement {
        let mut assignments = vec![TensorAssignment::AllGpus; ctx.dims.len()];
        let mut gpu_busy = vec![0.0f64; ctx.world];
        let mut net_free = 0.0f64;
        for i in cts_by_desc_cost(ctx) {
            let d = ctx.dims[i];
            let comp = ctx.comp.time(d);
            let bcast = ctx.comm.time_packed(d);
            let p = (0..ctx.world)
                .map(|p| {
                    let ready = gpu_busy[p] + comp;
                    (p, ready.max(net_free) + bcast)
                })
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite finish times"))
                .map(|(p, _)| p)
                .expect("world > 0");
            assignments[i] = TensorAssignment::Gpu(p);
            gpu_busy[p] += comp;
            net_free = gpu_busy[p].max(net_free) + bcast;
        }
        Placement::new(assignments, ctx.world)
    }
}

/// Balances the packed-triangular working set (`d(d+1)/2` elements per
/// communicated tensor) across GPUs; replicated tensors cost the same
/// everywhere and are ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryAwarePolicy;

impl PlacementPolicy for MemoryAwarePolicy {
    fn name(&self) -> String {
        "memory".into()
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Placement {
        let mut assignments = vec![TensorAssignment::AllGpus; ctx.dims.len()];
        let mut bytes = vec![0u128; ctx.world];
        for i in cts_by_desc_cost(ctx) {
            let d = ctx.dims[i] as u128;
            let p = bytes
                .iter()
                .enumerate()
                .min_by_key(|&(_, &b)| b)
                .map(|(p, _)| p)
                .expect("world > 0");
            assignments[i] = TensorAssignment::Gpu(p);
            bytes[p] += d * (d + 1) / 2;
        }
        Placement::new(assignments, ctx.world)
    }
}

/// Hierarchical-topology-aware placement: keep each layer's symmetric
/// factor pair on one island, spread load across islands.
///
/// `all_factor_dims()` interleaves `[A_0, G_0, A_1, G_1, …]`, so tensor
/// `i`'s Kronecker partner is `i ^ 1`. If the partner is already placed,
/// its island is reused (their broadcasts then share the cheap intra-island
/// hop); otherwise the least-loaded island wins. Within an island, the
/// least-loaded GPU takes the tensor — degenerating to exactly that
/// greedy balance (≈ LBP) when `gpus_per_node == 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopologyAwarePolicy;

impl PlacementPolicy for TopologyAwarePolicy {
    fn name(&self) -> String {
        "topo".into()
    }

    fn place(&self, ctx: &PlacementContext<'_>) -> Placement {
        let g = ctx.gpus_per_node.max(1).min(ctx.world);
        let n_islands = ctx.world.div_ceil(g);
        let mut assignments = vec![TensorAssignment::AllGpus; ctx.dims.len()];
        let mut gpu_load = vec![0.0f64; ctx.world];
        let mut island_load = vec![0.0f64; n_islands];
        for i in cts_by_desc_cost(ctx) {
            let w = ctx.comp.time(ctx.dims[i]);
            let partner_island = match assignments.get(i ^ 1) {
                Some(TensorAssignment::Gpu(q)) => Some(q / g),
                _ => None,
            };
            let island = partner_island.unwrap_or_else(|| {
                island_load
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite loads"))
                    .map(|(k, _)| k)
                    .expect("at least one island")
            });
            let lo = island * g;
            let hi = (lo + g).min(ctx.world);
            let p = (lo..hi)
                .min_by(|&a, &b| gpu_load[a].partial_cmp(&gpu_load[b]).expect("finite loads"))
                .expect("island non-empty");
            assignments[i] = TensorAssignment::Gpu(p);
            gpu_load[p] += w;
            island_load[island] += w;
        }
        Placement::new(assignments, ctx.world)
    }
}

/// Every policy the scaling sweep (`bench_scale`) pits against each other:
/// the paper's three strategies plus the three alternatives above.
pub fn policy_registry() -> Vec<PolicyHandle> {
    vec![
        PolicyHandle::strategy(PlacementStrategy::NonDist),
        PolicyHandle::strategy(PlacementStrategy::SeqDist),
        PolicyHandle::strategy(PlacementStrategy::default()),
        PolicyHandle::new(HeftPolicy),
        PolicyHandle::new(MemoryAwarePolicy),
        PolicyHandle::new(TopologyAwarePolicy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_core::perf::{AlphaBetaModel, ExpInverseModel};

    fn models() -> (ExpInverseModel, AlphaBetaModel) {
        (
            ExpInverseModel::new(1e-3, 0.5e-2),
            AlphaBetaModel::new(1.2e-3, 1e-7),
        )
    }

    fn dims() -> Vec<usize> {
        vec![64, 64, 256, 256, 1024, 1024, 2048, 2048, 4096, 4096]
    }

    fn check_valid(plc: &Placement, dims: &[usize], world: usize) {
        assert_eq!(plc.assignments().len(), dims.len());
        assert_eq!(plc.world(), world);
        for a in plc.assignments() {
            if let TensorAssignment::Gpu(p) = a {
                assert!(*p < world, "owner {p} out of range");
            }
        }
    }

    #[test]
    fn all_policies_emit_valid_placements() {
        let (comp, comm) = models();
        let dims = dims();
        for world in [1usize, 2, 8, 64] {
            let ctx = PlacementContext::new(&dims, world, &comp, &comm).with_gpus_per_node(4);
            for policy in policy_registry() {
                let plc = policy.place(&ctx);
                check_valid(&plc, &dims, world);
            }
        }
    }

    #[test]
    fn heft_balances_identical_tensors_across_gpus() {
        // With zero network cost in the way (tiny bcast), HEFT degenerates
        // to round-robin over equal tensors — every GPU gets its share.
        let comp = ExpInverseModel::new(1e-3, 0.5e-2);
        let comm = AlphaBetaModel::new(1e-9, 1e-12); // broadcasts ~free → all CT
        let dims = vec![2048; 8];
        let ctx = PlacementContext::new(&dims, 4, &comp, &comm);
        let plc = HeftPolicy.place(&ctx);
        let mut per_gpu = vec![0usize; 4];
        for a in plc.assignments() {
            if let TensorAssignment::Gpu(p) = a {
                per_gpu[*p] += 1;
            }
        }
        assert_eq!(per_gpu, vec![2, 2, 2, 2]);
    }

    #[test]
    fn memory_policy_balances_packed_bytes() {
        let (comp, comm) = models();
        let dims = vec![4096; 6];
        let ctx = PlacementContext::new(&dims, 3, &comp, &comm);
        let plc = MemoryAwarePolicy.place(&ctx);
        let mut per_gpu = vec![0u128; 3];
        for (i, a) in plc.assignments().iter().enumerate() {
            if let TensorAssignment::Gpu(p) = a {
                let d = dims[i] as u128;
                per_gpu[*p] += d * (d + 1) / 2;
            }
        }
        assert!(per_gpu.iter().all(|&b| b == per_gpu[0]), "{per_gpu:?}");
    }

    #[test]
    fn topology_policy_keeps_factor_pairs_on_one_island() {
        let (comp, comm) = models();
        // Big distinct CT dims, layer-major interleaved [A_i, G_i].
        let dims = vec![3000, 3001, 3002, 3003, 3004, 3005, 3006, 3007];
        let ctx = PlacementContext::new(&dims, 8, &comp, &comm).with_gpus_per_node(4);
        let plc = TopologyAwarePolicy.place(&ctx);
        for i in (0..dims.len()).step_by(2) {
            let (a, g) = (plc.assignments()[i], plc.assignments()[i + 1]);
            if let (TensorAssignment::Gpu(pa), TensorAssignment::Gpu(pg)) = (a, g) {
                assert_eq!(pa / 4, pg / 4, "pair {i}: islands {} vs {}", pa / 4, pg / 4);
            } else {
                panic!("pair {i} not communicated: {a:?} {g:?}");
            }
        }
    }

    #[test]
    fn topology_policy_spreads_pairs_across_islands() {
        let (comp, comm) = models();
        let dims = vec![3000, 3001, 3002, 3003];
        let ctx = PlacementContext::new(&dims, 8, &comp, &comm).with_gpus_per_node(4);
        let plc = TopologyAwarePolicy.place(&ctx);
        let islands: std::collections::BTreeSet<usize> = plc
            .assignments()
            .iter()
            .filter_map(|a| match a {
                TensorAssignment::Gpu(p) => Some(p / 4),
                _ => None,
            })
            .collect();
        assert_eq!(islands.len(), 2, "both islands should carry one pair");
    }

    #[test]
    fn policy_handle_debug_and_from() {
        let h: PolicyHandle = PlacementStrategy::SeqDist.into();
        assert_eq!(h.name(), "seq-dist");
        assert!(format!("{h:?}").contains("seq-dist"));
        assert_eq!(PolicyHandle::new(HeftPolicy).name(), "heft");
    }

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<String> = policy_registry().iter().map(|p| p.name()).collect();
        let set: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "{names:?}");
    }
}
