//! Iteration builders: scheduling one training iteration of each algorithm
//! onto the simulated cluster.

use crate::graph::{Tag, TaskGraph, TaskSpan};
use crate::hardware::HardwareProfile;
use crate::net::{self, NetTopology};
use crate::report::{attribute, SimReport};
use crate::sched::PolicyHandle;
use spdkfac_core::fusion::{self, FactorPipeline, FusionStrategy};
use spdkfac_core::placement::{
    PlacementContext, PlacementPolicy, PlacementStrategy, TensorAssignment,
};
use spdkfac_models::ModelProfile;
use spdkfac_obs::{CollEdge, SpanMeta};

/// Builds the collective metadata for the next network task: `seq` is the
/// running k-th-collective index of the simulated Horovod queue (mirroring
/// the per-thread counter `CommTelemetry` keeps on real comm tracks), so
/// the causal analyzer groups simulated collectives exactly like measured
/// ones.
fn coll_meta(edge: CollEdge, seq: &mut u64, size: usize) -> SpanMeta {
    let m = SpanMeta {
        edge: Some(edge),
        seq: Some(*seq),
        size: Some(size),
        ..SpanMeta::default()
    };
    *seq += 1;
    m
}

/// Training algorithms that can be simulated (the bars of Fig. 2 plus the
/// Table III columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// SGD on a single GPU (no communication).
    SgdSingle,
    /// K-FAC on a single GPU (no communication).
    KfacSingle,
    /// Distributed synchronous SGD with WFBP gradient aggregation.
    SSgd,
    /// D-KFAC: bulk factor aggregation, local inversion everywhere.
    DKfac,
    /// MPD-KFAC: bulk factor aggregation, sequential (round-robin) inverse
    /// placement with result broadcasts.
    MpdKfac,
    /// SPD-KFAC: pipelined factor aggregation with optimal tensor fusion +
    /// LBP inverse placement.
    SpdKfac,
}

/// How Kronecker factors are aggregated across workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FactorCommMode {
    /// No aggregation (single-GPU training).
    LocalOnly,
    /// One bulk all-reduce of all `A` and `G` factors after backward
    /// (the baseline of Pauloski et al., used by D-KFAC / MPD-KFAC).
    Bulk,
    /// All `A`s all-reduced at the end of forward (overlapping backward),
    /// all `G`s at the end of backward — Fig. 10's "Naive".
    Naive,
    /// Per-bucket all-reduces pipelined with compute under the given fusion
    /// strategy (Fig. 10's "LW w/o TF" = `LayerWise`, "LW w/ TTF" =
    /// `Threshold`, "SP w/ OTF" = `Optimal`).
    Pipelined(FusionStrategy),
}

/// How gradients are fused for WFBP aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradFusionMode {
    /// Horovod default: fuse until the buffer capacity
    /// (`SimConfig::grad_fusion_elems`) is reached.
    #[default]
    Threshold,
    /// MG-WFBP (Shi et al., the paper's reference \[23\]): the same Eq. 15
    /// merging rule the factor pipeline uses, applied to gradients.
    Optimal,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hardware cost models.
    pub hw: HardwareProfile,
    /// Number of GPUs for the distributed algorithms.
    pub world: usize,
    /// Horovod gradient fusion-buffer capacity in elements (64 MB of fp32 by
    /// default).
    pub grad_fusion_elems: usize,
    /// Override the algorithm's factor-aggregation mode (for the Fig. 10
    /// pipelining ablation).
    pub factor_mode: Option<FactorCommMode>,
    /// Override the algorithm's inverse placement (for the Fig. 12/13
    /// ablations and the scaling study's alternative policies).
    pub placement: Option<PolicyHandle>,
    /// Gradient fusion policy for the WFBP aggregation.
    pub grad_fusion: GradFusionMode,
    /// Network topology / execution model (see [`crate::net`]).
    pub topology: NetTopology,
    /// Bytes per communicated element (4 = fp32, the paper's setting;
    /// 2 = fp16 wire compression as used by later systems like KAISA).
    /// Scales the bandwidth term of both collective models.
    pub wire_bytes: f64,
    /// Wire-codec CPU cost in seconds per element (encode + decode), added
    /// to the bandwidth term of both collective models. 0 for the f64/fp32
    /// pass-through; calibrate from the real stack's `calib/encode` fit
    /// when simulating compressed formats.
    pub codec_s_per_elem: f64,
}

impl SimConfig {
    /// The paper's testbed at the given GPU count (communication models are
    /// rescaled from the 64-GPU calibration point via
    /// [`HardwareProfile::scaled_to_world`]).
    pub fn paper_testbed(world: usize) -> Self {
        SimConfig {
            hw: HardwareProfile::rtx2080ti_ib100().scaled_to_world(world),
            world,
            grad_fusion_elems: 16 * 1024 * 1024,
            grad_fusion: GradFusionMode::default(),
            factor_mode: None,
            placement: None,
            topology: NetTopology::default(),
            wire_bytes: 4.0,
            codec_s_per_elem: 0.0,
        }
    }
}

/// Simulates one training iteration of `algo` on `model` and returns the
/// schedule with its Fig. 2-style breakdown.
pub fn simulate_iteration(model: &ModelProfile, cfg: &SimConfig, algo: Algo) -> SimReport {
    simulate_iteration_planned(model, cfg, algo, None)
}

/// As [`simulate_iteration`], but plan decisions (fusion plans, inverse
/// placement) are computed from `plan_hw`'s cost models while task
/// durations come from `cfg.hw` — the drifting-hardware replay: `plan_hw`
/// is what the planner *believes*, `cfg.hw` is what the cluster *does*.
/// `None` plans from `cfg.hw` (belief matches reality), which is exactly
/// [`simulate_iteration`].
pub fn simulate_iteration_planned(
    model: &ModelProfile,
    cfg: &SimConfig,
    algo: Algo,
    plan_hw: Option<&HardwareProfile>,
) -> SimReport {
    let single = matches!(algo, Algo::SgdSingle | Algo::KfacSingle);
    let precond = !matches!(algo, Algo::SgdSingle | Algo::SSgd);
    let world = if single { 1 } else { cfg.world.max(1) };
    let adjust = |profile: &HardwareProfile| -> HardwareProfile {
        let mut h = if single {
            profile.single_gpu()
        } else {
            profile.clone()
        };
        // Wire precision: β terms are calibrated for 4-byte elements, and
        // a compressed format adds its codec CPU cost per element.
        let wire = cfg.wire_bytes / 4.0;
        h.allreduce.beta = h.allreduce.beta * wire + cfg.codec_s_per_elem;
        h.bcast.beta = h.bcast.beta * wire + cfg.codec_s_per_elem;
        h
    };
    let hw = adjust(&cfg.hw);
    let phw = plan_hw.map(adjust).unwrap_or_else(|| hw.clone());

    let factor_mode = if !precond || single {
        FactorCommMode::LocalOnly
    } else {
        match algo {
            Algo::DKfac | Algo::MpdKfac => cfg.factor_mode.unwrap_or(FactorCommMode::Bulk),
            Algo::SpdKfac => cfg
                .factor_mode
                .unwrap_or(FactorCommMode::Pipelined(FusionStrategy::Optimal)),
            _ => FactorCommMode::LocalOnly,
        }
    };
    let policy: PolicyHandle = if !precond || single {
        PlacementStrategy::NonDist.into()
    } else {
        match algo {
            Algo::DKfac => cfg
                .placement
                .clone()
                .unwrap_or_else(|| PlacementStrategy::NonDist.into()),
            Algo::MpdKfac => cfg
                .placement
                .clone()
                .unwrap_or_else(|| PlacementStrategy::SeqDist.into()),
            Algo::SpdKfac => cfg
                .placement
                .clone()
                .unwrap_or_else(|| PlacementStrategy::default().into()),
            _ => PlacementStrategy::NonDist.into(),
        }
    };

    // The network model owns resource layout and collective timing:
    // resources 0..world are the GPU streams, the rest belong to the model
    // (shared queue, per-root links, or the hierarchical fluid links).
    // `exec_net` executes with reality's models; `plan_net` prices
    // collectives with the planner's (possibly stale) beliefs.
    let mut exec_net = net::build(&cfg.topology, &hw, world);
    let plan_net = net::build(&cfg.topology, &phw, world);
    let mut g = TaskGraph::new(exec_net.num_resources());
    let batch = model.batch_size();
    let layers = model.layers();
    let nl = layers.len();

    let a_sizes: Vec<usize> = layers.iter().map(|l| l.packed_a()).collect();
    let g_sizes_rev: Vec<usize> = layers.iter().rev().map(|l| l.packed_g()).collect();

    // ---------------- Forward pass (+ A factors) --------------------------
    // Analytic ready times on the (contention-free) representative stream.
    let mut a_ready = Vec::with_capacity(nl);
    let mut cursor = 0.0f64;
    for l in layers {
        if precond {
            cursor += hw.factor_a_time(l, batch);
            a_ready.push(cursor);
        }
        cursor += hw.ff_time(l, batch);
    }
    // Fusion plans are computed against the planning network's all-reduce
    // model: for the flat queue that is the *contended* cost (the paper
    // fits its models from measurements taken during training, which
    // include compute contention); for hierarchical topologies it is the
    // closed-form effective model, since contention is simulated directly.
    let plan_comm = plan_net.plan_allreduce();
    // Running k-th-collective index of the network queue.
    let mut coll_seq: u64 = 0;
    let a_plan = match factor_mode {
        FactorCommMode::Pipelined(strategy) => Some(fusion::plan(
            &FactorPipeline::new(a_ready.clone(), a_sizes.clone()).expect("A pipeline"),
            &plan_comm,
            strategy,
        )),
        _ => None,
    };

    let mut a_comp_ids = Vec::with_capacity(nl);
    let mut factor_comm_ids: Vec<usize> = Vec::new();
    {
        let mut bucket_idx = 0usize;
        let mut in_bucket = 0usize;
        for l in layers {
            if precond {
                let id = g.push(0, hw.factor_a_time(l, batch), &[], Tag::FactorComp);
                a_comp_ids.push(id);
                if let Some(plan) = &a_plan {
                    in_bucket += 1;
                    if in_bucket == plan.buckets()[bucket_idx].len() {
                        let elems: usize =
                            plan.buckets()[bucket_idx].iter().map(|&i| a_sizes[i]).sum();
                        let dep = a_comp_ids[*plan.buckets()[bucket_idx].last().expect("bucket")];
                        let meta = coll_meta(CollEdge::Join, &mut coll_seq, elems);
                        factor_comm_ids.push(exec_net.push_allreduce(
                            &mut g,
                            elems,
                            &[dep],
                            Tag::FactorComm,
                            meta,
                        ));
                        bucket_idx += 1;
                        in_bucket = 0;
                    }
                }
            }
            g.push(0, hw.ff_time(l, batch), &[], Tag::FfBp);
        }
    }
    if precond && matches!(factor_mode, FactorCommMode::Naive) {
        let elems: usize = a_sizes.iter().sum();
        let dep = *a_comp_ids.last().expect("layers non-empty");
        let meta = coll_meta(CollEdge::Join, &mut coll_seq, elems);
        factor_comm_ids.push(exec_net.push_allreduce(&mut g, elems, &[dep], Tag::FactorComm, meta));
    }

    // ---------------- Backward pass (+ G factors + WFBP gradients) --------
    // Analytic G ready times, continuing the stream cursor.
    let mut g_ready = Vec::with_capacity(nl);
    let mut grad_ready = Vec::with_capacity(nl);
    for l in layers.iter().rev() {
        cursor += hw.bp_time(l, batch);
        grad_ready.push(cursor);
        if precond {
            cursor += hw.factor_g_time(l, batch);
            g_ready.push(cursor);
        }
    }
    let g_plan = match factor_mode {
        FactorCommMode::Pipelined(strategy) => Some(fusion::plan(
            &FactorPipeline::new(g_ready.clone(), g_sizes_rev.clone()).expect("G pipeline"),
            &plan_comm,
            strategy,
        )),
        _ => None,
    };

    let grad_sizes_rev: Vec<usize> = layers.iter().rev().map(|l| l.params()).collect();
    let grad_plan = if !single && cfg.grad_fusion == GradFusionMode::Optimal {
        Some(fusion::plan(
            &FactorPipeline::new(grad_ready.clone(), grad_sizes_rev.clone())
                .expect("grad pipeline"),
            &plan_comm,
            FusionStrategy::Optimal,
        ))
    } else {
        None
    };

    let mut last_bwd_id = 0usize;
    let mut g_comp_ids = Vec::with_capacity(nl);
    {
        let mut bucket_idx = 0usize;
        let mut in_bucket = 0usize;
        let mut grad_acc = 0usize;
        let mut grad_bucket_idx = 0usize;
        let mut grad_in_bucket = 0usize;
        for l in layers.iter().rev() {
            let bp_id = g.push(0, hw.bp_time(l, batch), &[], Tag::FfBp);
            last_bwd_id = bp_id;
            if precond {
                let gid = g.push(0, hw.factor_g_time(l, batch), &[], Tag::FactorComp);
                g_comp_ids.push(gid);
                last_bwd_id = gid;
                if let Some(plan) = &g_plan {
                    in_bucket += 1;
                    if in_bucket == plan.buckets()[bucket_idx].len() {
                        let elems: usize = plan.buckets()[bucket_idx]
                            .iter()
                            .map(|&i| g_sizes_rev[i])
                            .sum();
                        let dep = g_comp_ids[*plan.buckets()[bucket_idx].last().expect("bucket")];
                        let meta = coll_meta(CollEdge::Join, &mut coll_seq, elems);
                        factor_comm_ids.push(exec_net.push_allreduce(
                            &mut g,
                            elems,
                            &[dep],
                            Tag::FactorComm,
                            meta,
                        ));
                        bucket_idx += 1;
                        in_bucket = 0;
                    }
                }
            }
            if !single {
                match &grad_plan {
                    // MG-WFBP: buckets follow the Eq. 15 plan over gradient
                    // ready times.
                    Some(plan) => {
                        grad_acc += l.params();
                        grad_in_bucket += 1;
                        if grad_in_bucket == plan.buckets()[grad_bucket_idx].len() {
                            let meta = coll_meta(CollEdge::Join, &mut coll_seq, grad_acc);
                            exec_net.push_allreduce(
                                &mut g,
                                grad_acc,
                                &[bp_id],
                                Tag::GradComm,
                                meta,
                            );
                            grad_acc = 0;
                            grad_in_bucket = 0;
                            grad_bucket_idx += 1;
                        }
                    }
                    // WFBP: gradients of this layer join the fusion buffer;
                    // flush when the Horovod buffer capacity is reached.
                    None => {
                        grad_acc += l.params();
                        if grad_acc >= cfg.grad_fusion_elems {
                            let meta = coll_meta(CollEdge::Join, &mut coll_seq, grad_acc);
                            exec_net.push_allreduce(
                                &mut g,
                                grad_acc,
                                &[bp_id],
                                Tag::GradComm,
                                meta,
                            );
                            grad_acc = 0;
                        }
                    }
                }
            }
        }
        if !single && grad_acc > 0 {
            let meta = coll_meta(CollEdge::Join, &mut coll_seq, grad_acc);
            exec_net.push_allreduce(&mut g, grad_acc, &[last_bwd_id], Tag::GradComm, meta);
        }
    }
    match factor_mode {
        FactorCommMode::Bulk => {
            let elems: usize = a_sizes.iter().sum::<usize>() + g_sizes_rev.iter().sum::<usize>();
            let dep = *g_comp_ids.last().expect("layers non-empty");
            let meta = coll_meta(CollEdge::Join, &mut coll_seq, elems);
            factor_comm_ids.push(exec_net.push_allreduce(
                &mut g,
                elems,
                &[dep],
                Tag::FactorComm,
                meta,
            ));
        }
        FactorCommMode::Naive => {
            let elems: usize = g_sizes_rev.iter().sum();
            let dep = *g_comp_ids.last().expect("layers non-empty");
            let meta = coll_meta(CollEdge::Join, &mut coll_seq, elems);
            factor_comm_ids.push(exec_net.push_allreduce(
                &mut g,
                elems,
                &[dep],
                Tag::FactorComm,
                meta,
            ));
        }
        _ => {}
    }

    // ---------------- Inverse phase ---------------------------------------
    if precond {
        let inv_dims = model.all_factor_dims();
        let plan_bcast = plan_net.plan_bcast();
        let ctx = PlacementContext::new(&inv_dims, world, &phw.inverse, &plan_bcast)
            .with_gpus_per_node(plan_net.gpus_per_node());
        let plc = policy.place(&ctx);
        // Barrier: all factors aggregated (and backward finished).
        let mut barrier = factor_comm_ids.clone();
        barrier.push(last_bwd_id);

        // Per-GPU inversion order (§V-B): communicated tensors first
        // (smallest first) so their broadcasts hit the network early, then
        // the replicated NCTs, which overlap the remaining broadcasts.
        let mut comp_id_of_tensor: Vec<Vec<(usize, usize)>> = vec![Vec::new(); world];
        for (p, ids) in comp_id_of_tensor.iter_mut().enumerate() {
            let mut mine = plc.set_for_gpu(p);
            mine.sort_by(|&a, &b| {
                plc.is_nct(a)
                    .cmp(&plc.is_nct(b))
                    .then(inv_dims[a].cmp(&inv_dims[b]))
                    .then(a.cmp(&b))
            });
            for t in mine {
                let id = g.push(p, hw.inverse_time(inv_dims[t]), &barrier, Tag::InverseComp);
                ids.push((t, id));
            }
        }
        // Broadcasts of CT results, issued round-robin across owners so the
        // network picks them up roughly in completion order.
        let mut bcast_ids = Vec::new();
        let max_len = comp_id_of_tensor.iter().map(|v| v.len()).max().unwrap_or(0);
        for k in 0..max_len {
            for (p, ids) in comp_id_of_tensor.iter().enumerate() {
                if let Some(&(t, comp_id)) = ids.get(k) {
                    if let TensorAssignment::Gpu(owner) = plc.assignments()[t] {
                        debug_assert_eq!(owner, p);
                        let d = inv_dims[t];
                        let meta = coll_meta(
                            CollEdge::FanOut { root: owner },
                            &mut coll_seq,
                            d * (d + 1) / 2,
                        );
                        bcast_ids.push(exec_net.push_bcast(
                            &mut g,
                            d,
                            owner,
                            &[comp_id],
                            Tag::InverseComm,
                            meta,
                        ));
                    }
                }
            }
        }
        // Preconditioning + update on the representative GPU.
        let mut update_deps: Vec<usize> = comp_id_of_tensor[0].iter().map(|&(_, id)| id).collect();
        update_deps.extend(&bcast_ids);
        let precond_time: f64 = layers
            .iter()
            .map(|l| l.precond_flops() / hw.gemm_flops + hw.kernel_overhead)
            .sum();
        g.push(0, precond_time, &update_deps, Tag::Other);
    } else {
        // SGD-style update.
        g.push(0, hw.kernel_overhead, &[], Tag::Other);
    }

    let spans = exec_net.execute(&mut g);
    attribute(spans, world)
}

/// Simulates the *average* iteration time when K-FAC's second-order work
/// (factor aggregation + inversion) runs only every `kfac_interval`-th
/// iteration, with the other iterations applying the stale preconditioner —
/// the amortization later systems (e.g. KAISA) build on, and an extension of
/// the paper's timing study (which refreshes every iteration).
///
/// Iterations without second-order work cost an S-SGD iteration plus the
/// preconditioning GEMMs.
///
/// # Panics
///
/// Panics if `kfac_interval == 0`.
pub fn simulate_amortized_iteration(
    model: &ModelProfile,
    cfg: &SimConfig,
    algo: Algo,
    kfac_interval: usize,
) -> f64 {
    assert!(kfac_interval > 0, "kfac_interval must be positive");
    let full = simulate_iteration(model, cfg, algo).total;
    if kfac_interval == 1 {
        return full;
    }
    // Light iteration: forward/backward + gradient aggregation + stale
    // preconditioning (no factor compute/comm, no inversions).
    let ssgd = simulate_iteration(model, cfg, Algo::SSgd).total;
    let hw = &cfg.hw;
    let precond: f64 = model
        .layers()
        .iter()
        .map(|l| l.precond_flops() / hw.gemm_flops + hw.kernel_overhead)
        .sum();
    let light = ssgd + precond;
    ((kfac_interval - 1) as f64 * light + full) / kfac_interval as f64
}

/// Simulates only the inverse phase (Fig. 12): inversion + broadcasting of
/// `dims` under `policy`, starting from idle at t = 0. Returns the phase
/// report (its `total` is the Fig. 12 bar).
pub fn simulate_inverse_phase(
    dims: &[usize],
    cfg: &SimConfig,
    policy: &dyn PlacementPolicy,
) -> SimReport {
    let world = cfg.world.max(1);
    let mut hw = cfg.hw.clone();
    hw.bcast.beta = hw.bcast.beta * (cfg.wire_bytes / 4.0) + cfg.codec_s_per_elem;
    let mut exec_net = net::build(&cfg.topology, &hw, world);
    let mut g = TaskGraph::new(exec_net.num_resources());
    let plan_bcast = exec_net.plan_bcast();
    let ctx = PlacementContext::new(dims, world, &hw.inverse, &plan_bcast)
        .with_gpus_per_node(exec_net.gpus_per_node());
    let plc = policy.place(&ctx);
    let mut comp_id_of_tensor: Vec<Vec<(usize, usize)>> = vec![Vec::new(); world];
    for (p, ids) in comp_id_of_tensor.iter_mut().enumerate() {
        let mut mine = plc.set_for_gpu(p);
        mine.sort_by(|&a, &b| {
            plc.is_nct(a)
                .cmp(&plc.is_nct(b))
                .then(dims[a].cmp(&dims[b]))
                .then(a.cmp(&b))
        });
        for t in mine {
            let id = g.push(p, hw.inverse_time(dims[t]), &[], Tag::InverseComp);
            ids.push((t, id));
        }
    }
    let max_len = comp_id_of_tensor.iter().map(|v| v.len()).max().unwrap_or(0);
    let mut coll_seq: u64 = 0;
    for k in 0..max_len {
        for ids in comp_id_of_tensor.iter() {
            if let Some(&(t, comp_id)) = ids.get(k) {
                if let TensorAssignment::Gpu(owner) = plc.assignments()[t] {
                    let d = dims[t];
                    let meta = coll_meta(
                        CollEdge::FanOut { root: owner },
                        &mut coll_seq,
                        d * (d + 1) / 2,
                    );
                    exec_net.push_bcast(&mut g, d, owner, &[comp_id], Tag::InverseComm, meta);
                }
            }
        }
    }
    let spans = exec_net.execute(&mut g);
    attribute(spans, world)
}

/// Outcome of the drifting-hardware replay (see [`simulate_drift_replay`]).
#[derive(Debug, Clone)]
pub struct DriftReplay {
    /// One iteration before the drift: planned and executed on `cfg.hw`.
    pub before: SimReport,
    /// One iteration after the drift with the **stale** generation-0 plan:
    /// planned from the pre-drift models, executed on the drifted hardware
    /// — what a static-plan trainer keeps paying.
    pub stale: SimReport,
    /// One iteration after the adaptive runtime's re-plan barrier: planned
    /// from the agreed post-drift models, executed on the drifted hardware.
    pub replanned: SimReport,
    /// The stale iteration followed by the re-planned one on a shared
    /// clock, with the re-planned iteration's collectives stamped
    /// generation 1 — a two-generation trace for the causal analyzer.
    pub spans: Vec<TaskSpan>,
}

impl DriftReplay {
    /// Modelled time the re-plan recovers per post-drift iteration.
    pub fn recovered_s(&self) -> f64 {
        self.stale.total - self.replanned.total
    }
}

/// Replays the adaptive runtime's drifting-hardware scenario in the
/// simulator: mid-run, the network's startup latency α multiplies by
/// `alpha_scale` (e.g. `2.0` = congestion doubles per-collective latency).
/// A static-plan trainer keeps executing the plan fitted to the old α
/// (`stale`); the adaptive runtime re-fits at the next barrier, agrees on
/// the drifted models, and swaps to the plan they imply (`replanned`).
/// Larger α penalizes many-message plans, so the re-planned fusion merges
/// more aggressively and the LBP placement re-balances CT/NCT choices.
///
/// # Panics
///
/// Panics if `alpha_scale` is not positive and finite.
pub fn simulate_drift_replay(
    model: &ModelProfile,
    cfg: &SimConfig,
    algo: Algo,
    alpha_scale: f64,
) -> DriftReplay {
    assert!(
        alpha_scale.is_finite() && alpha_scale > 0.0,
        "invalid alpha_scale {alpha_scale}"
    );
    let before = simulate_iteration(model, cfg, algo);
    let mut drifted = cfg.clone();
    drifted.hw.allreduce.alpha *= alpha_scale;
    drifted.hw.bcast.alpha *= alpha_scale;
    let stale = simulate_iteration_planned(model, &drifted, algo, Some(&cfg.hw));
    let replanned = simulate_iteration(model, &drifted, algo);
    // Generation-boundary trace: the stale (generation-0) iteration, then
    // the re-planned one shifted onto the same clock with its collectives
    // stamped generation 1 — per-epoch k-th-collective matching keeps the
    // two iterations' queues separate even though both restart seq at 0.
    let offset = stale.total;
    let mut spans = stale.spans.clone();
    spans.extend(replanned.spans.iter().map(|s| {
        let mut s = *s;
        s.start += offset;
        s.end += offset;
        if s.meta.edge.is_some() {
            s.meta.generation = Some(1);
        }
        s
    }));
    DriftReplay {
        before,
        stale,
        replanned,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdkfac_models::{densenet201, paper_models, resnet50};

    fn cfg() -> SimConfig {
        SimConfig::paper_testbed(64)
    }

    #[test]
    fn sgd_single_has_no_comm() {
        let r = simulate_iteration(&resnet50(), &cfg(), Algo::SgdSingle);
        assert_eq!(r.breakdown.grad_comm, 0.0);
        assert_eq!(r.breakdown.factor_comm, 0.0);
        assert!(r.breakdown.ff_bp > 0.0);
    }

    #[test]
    fn kfac_single_is_about_4x_sgd() {
        // Fig. 2: "KFAC takes about 4 times slower than SGD".
        let sgd = simulate_iteration(&resnet50(), &cfg(), Algo::SgdSingle);
        let kfac = simulate_iteration(&resnet50(), &cfg(), Algo::KfacSingle);
        let ratio = kfac.total / sgd.total;
        assert!(
            (2.5..6.0).contains(&ratio),
            "KFAC/SGD single-GPU ratio {ratio:.2} out of range"
        );
    }

    #[test]
    fn ssgd_adds_bounded_comm() {
        let sgd = simulate_iteration(&resnet50(), &cfg(), Algo::SgdSingle);
        let ssgd = simulate_iteration(&resnet50(), &cfg(), Algo::SSgd);
        assert!(ssgd.total > sgd.total);
        assert!(ssgd.breakdown.grad_comm > 0.0);
        // WFBP hides most gradient communication behind backward.
        assert!(ssgd.breakdown.grad_comm < 0.1);
    }

    #[test]
    fn table3_ordering_holds_on_all_models() {
        // SPD < MPD < D on ResNet/Inception; SPD < D < MPD on DenseNet-201.
        for m in paper_models() {
            let d = simulate_iteration(&m, &cfg(), Algo::DKfac).total;
            let mpd = simulate_iteration(&m, &cfg(), Algo::MpdKfac).total;
            let spd = simulate_iteration(&m, &cfg(), Algo::SpdKfac).total;
            assert!(spd < d, "{}: SPD {spd:.4} !< D {d:.4}", m.name());
            assert!(spd < mpd, "{}: SPD {spd:.4} !< MPD {mpd:.4}", m.name());
        }
    }

    #[test]
    fn densenet_mpd_slower_than_dkfac() {
        // Fig. 9 / Table III: MPD-KFAC loses to D-KFAC on DenseNet-201
        // because broadcasting hundreds of small inverses is startup-bound.
        let m = densenet201();
        let d = simulate_iteration(&m, &cfg(), Algo::DKfac).total;
        let mpd = simulate_iteration(&m, &cfg(), Algo::MpdKfac).total;
        assert!(mpd > d, "DenseNet-201: MPD {mpd:.4} should exceed D {d:.4}");
    }

    #[test]
    fn spd_hides_factor_comm() {
        let m = resnet50();
        let d = simulate_iteration(&m, &cfg(), Algo::DKfac);
        let spd = simulate_iteration(&m, &cfg(), Algo::SpdKfac);
        assert!(
            spd.breakdown.factor_comm < d.breakdown.factor_comm,
            "SPD factor comm {:.4} !< D {:.4}",
            spd.breakdown.factor_comm,
            d.breakdown.factor_comm
        );
    }

    #[test]
    fn inverse_phase_lbp_beats_baselines() {
        // Fig. 12 orderings on all four models.
        for m in paper_models() {
            let dims = m.all_factor_dims();
            let non = simulate_inverse_phase(&dims, &cfg(), &PlacementStrategy::NonDist).total;
            let seq = simulate_inverse_phase(&dims, &cfg(), &PlacementStrategy::SeqDist).total;
            let lbp = simulate_inverse_phase(&dims, &cfg(), &PlacementStrategy::default()).total;
            assert!(
                lbp <= non * 1.001,
                "{}: LBP {lbp:.4} vs Non-Dist {non:.4}",
                m.name()
            );
            assert!(
                lbp <= seq * 1.001,
                "{}: LBP {lbp:.4} vs Seq-Dist {seq:.4}",
                m.name()
            );
        }
    }

    #[test]
    fn densenet_seqdist_worse_than_nondist() {
        // Fig. 12: Seq-Dist loses to Non-Dist on DenseNet-201.
        let m = densenet201();
        let dims = m.all_factor_dims();
        let non = simulate_inverse_phase(&dims, &cfg(), &PlacementStrategy::NonDist).total;
        let seq = simulate_inverse_phase(&dims, &cfg(), &PlacementStrategy::SeqDist).total;
        assert!(
            seq > non,
            "DenseNet-201: Seq-Dist {seq:.4} !> Non-Dist {non:.4}"
        );
    }

    #[test]
    fn breakdown_sums_to_total_everywhere() {
        for algo in [
            Algo::SgdSingle,
            Algo::KfacSingle,
            Algo::SSgd,
            Algo::DKfac,
            Algo::MpdKfac,
            Algo::SpdKfac,
        ] {
            let r = simulate_iteration(&resnet50(), &cfg(), algo);
            assert!(
                (r.breakdown.total() - r.total).abs() < 1e-9,
                "{algo:?}: breakdown {:.6} != total {:.6}",
                r.breakdown.total(),
                r.total
            );
        }
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let m = resnet50();
        let slow = cfg();
        let mut fast = cfg();
        fast.hw.allreduce.beta /= 4.0;
        fast.hw.bcast.beta /= 4.0;
        for algo in [Algo::SSgd, Algo::DKfac, Algo::MpdKfac, Algo::SpdKfac] {
            let ts = simulate_iteration(&m, &slow, algo).total;
            let tf = simulate_iteration(&m, &fast, algo).total;
            assert!(
                tf <= ts + 1e-9,
                "{algo:?}: faster net slower? {tf:.4} vs {ts:.4}"
            );
        }
    }

    #[test]
    fn mgwfbp_gradient_fusion_never_slower_for_ssgd() {
        // MG-WFBP's plan-based fusion should match or beat the Horovod
        // threshold buffer on S-SGD for every paper model.
        for m in paper_models() {
            let thr = simulate_iteration(&m, &cfg(), Algo::SSgd).total;
            let mut oc = cfg();
            oc.grad_fusion = GradFusionMode::Optimal;
            let opt = simulate_iteration(&m, &oc, Algo::SSgd).total;
            assert!(
                opt <= thr + 1e-4,
                "{}: MG-WFBP {opt:.4} > WFBP {thr:.4}",
                m.name()
            );
        }
    }

    #[test]
    fn per_root_parallel_network_never_slower() {
        // Removing broadcast serialization can only help (or tie).
        for m in paper_models() {
            let dims = m.all_factor_dims();
            for strategy in [PlacementStrategy::SeqDist, PlacementStrategy::default()] {
                let ser = simulate_inverse_phase(&dims, &cfg(), &strategy).total;
                let mut pcfg = cfg();
                pcfg.topology = NetTopology::per_root_parallel();
                let par = simulate_inverse_phase(&dims, &pcfg, &strategy).total;
                assert!(par <= ser + 1e-9, "{}: {par} > {ser}", m.name());
            }
        }
    }

    #[test]
    fn fp16_wire_halves_exposed_comm_cost() {
        let m = resnet50();
        let d32 = simulate_iteration(&m, &cfg(), Algo::DKfac);
        let mut c16 = cfg();
        c16.wire_bytes = 2.0;
        let d16 = simulate_iteration(&m, &c16, Algo::DKfac);
        assert!(d16.total < d32.total);
        // The bulk factor all-reduce is exposed in D-KFAC; its β term halves
        // while the α term stays, so the saving is a bit under 2x.
        assert!(d16.breakdown.factor_comm < d32.breakdown.factor_comm * 0.7);
        assert!(d16.breakdown.factor_comm > d32.breakdown.factor_comm * 0.4);
    }

    #[test]
    fn codec_cost_erodes_the_compression_win() {
        // fp16 wire with a free codec beats fp32; the same wire with an
        // absurdly expensive codec is worse than not compressing at all.
        let m = resnet50();
        let d32 = simulate_iteration(&m, &cfg(), Algo::DKfac);
        let mut free = cfg();
        free.wire_bytes = 2.0;
        let d16 = simulate_iteration(&m, &free, Algo::DKfac);
        assert!(d16.breakdown.factor_comm < d32.breakdown.factor_comm);
        let mut costly = free.clone();
        costly.codec_s_per_elem = cfg().hw.allreduce.beta * 10.0;
        let slow = simulate_iteration(&m, &costly, Algo::DKfac);
        assert!(slow.breakdown.factor_comm > d32.breakdown.factor_comm);
    }

    #[test]
    fn amortized_iterations_interpolate_between_kfac_and_ssgd() {
        let m = resnet50();
        let full = simulate_amortized_iteration(&m, &cfg(), Algo::SpdKfac, 1);
        let sparse = simulate_amortized_iteration(&m, &cfg(), Algo::SpdKfac, 10);
        let very_sparse = simulate_amortized_iteration(&m, &cfg(), Algo::SpdKfac, 100);
        let ssgd = simulate_iteration(&m, &cfg(), Algo::SSgd).total;
        assert!(sparse < full);
        assert!(very_sparse < sparse);
        assert!(
            very_sparse > ssgd,
            "stale-factor K-FAC still costs more than S-SGD"
        );
        // Monotone decreasing in the interval.
        let mut prev = full;
        for k in [2usize, 4, 8, 16, 32] {
            let t = simulate_amortized_iteration(&m, &cfg(), Algo::SpdKfac, k);
            assert!(t <= prev + 1e-12, "interval {k}: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn simulated_collectives_carry_causal_metadata() {
        // Satellite: every simulated collective is stamped with edge/seq/
        // size so the causal analyzer resolves simulator stragglers exactly
        // (not via the EPS start-time heuristic).
        let r = simulate_iteration(&resnet50(), &cfg(), Algo::SpdKfac);
        let world = cfg().world;
        let comm: Vec<_> = r.spans.iter().filter(|s| s.tag.is_comm()).collect();
        assert!(!comm.is_empty());
        let mut seqs: Vec<u64> = Vec::new();
        for s in &comm {
            assert!(s.meta.edge.is_some(), "comm span missing edge: {s:?}");
            assert!(s.meta.size.is_some(), "comm span missing size: {s:?}");
            seqs.push(s.meta.seq.expect("comm span missing seq"));
        }
        seqs.sort_unstable();
        let expect: Vec<u64> = (0..comm.len() as u64).collect();
        assert_eq!(seqs, expect, "collective seqs must be 0..n unique");
        // The causal graph consumes the metadata end to end.
        let obs = crate::graph::to_obs_spans(&r.spans);
        let report = spdkfac_obs::CriticalReport::from_spans(
            &obs,
            spdkfac_obs::RankMap::simulator(world, world + 1),
        );
        assert!(report.path_total() >= 0.95 * report.wall());
    }

    #[test]
    fn drift_replay_replans_to_a_better_plan() {
        // Network α jumps 8x mid-run: the stale plan (fitted to the cheap
        // α) pays exposed latency on every small message; the re-planned
        // iteration merges harder and re-balances, beating the stale plan.
        let m = resnet50();
        let r = simulate_drift_replay(&m, &cfg(), Algo::SpdKfac, 8.0);
        assert!(
            r.stale.total > r.before.total,
            "drift must hurt: stale {:.4} !> before {:.4}",
            r.stale.total,
            r.before.total
        );
        assert!(
            r.replanned.total < r.stale.total,
            "re-plan must beat the stale plan: {:.4} !< {:.4}",
            r.replanned.total,
            r.stale.total
        );
        assert!(r.recovered_s() > 0.0);
        // The concatenated trace spans both generations…
        assert!(r
            .spans
            .iter()
            .any(|s| s.meta.generation == Some(1) && s.meta.edge.is_some()));
        assert!(r
            .spans
            .iter()
            .any(|s| s.meta.generation.is_none() && s.meta.edge.is_some()));
        // …and the causal analyzer still attributes ≥95% of wall time
        // across the generation boundary.
        let world = cfg().world;
        let obs = crate::graph::to_obs_spans(&r.spans);
        let report = spdkfac_obs::CriticalReport::from_spans(
            &obs,
            spdkfac_obs::RankMap::simulator(world, world + 1),
        );
        assert!(
            report.path_total() >= 0.95 * report.wall(),
            "attribution {:.1}% across generation boundary",
            100.0 * report.path_total() / report.wall()
        );
    }

    #[test]
    fn drift_replay_identity_scale_is_a_fixed_point() {
        // alpha_scale = 1 drifts nothing: the "stale" and "re-planned"
        // iterations are the same schedule (no spurious plan churn).
        let m = resnet50();
        let r = simulate_drift_replay(&m, &cfg(), Algo::SpdKfac, 1.0);
        assert!((r.stale.total - r.before.total).abs() < 1e-12);
        assert!((r.replanned.total - r.before.total).abs() < 1e-12);
    }

    #[test]
    fn fusion_strategy_ordering_fig10() {
        // Fig. 10 shape: on the non-overlapped factor-comm metric OTF beats
        // Naive and LW outright and stays within scheduling noise of TTF
        // (whose exposure OTF trades for a faster overall iteration); on
        // iteration time OTF is the best strategy on every model.
        for m in paper_models() {
            let run = |mode: FactorCommMode| {
                let mut c = cfg();
                c.factor_mode = Some(mode);
                let r = simulate_iteration(&m, &c, Algo::SpdKfac);
                (r.breakdown.factor_comm, r.total)
            };
            let naive = run(FactorCommMode::Naive);
            let lw = run(FactorCommMode::Pipelined(FusionStrategy::LayerWise));
            let ttf = run(FactorCommMode::Pipelined(FusionStrategy::Threshold {
                elems: 16 * 1024 * 1024,
                cycle_s: 0.005,
            }));
            let otf = run(FactorCommMode::Pipelined(FusionStrategy::Optimal));
            assert!(
                otf.0 <= naive.0 + 1e-9,
                "{}: OTF {:.4} > Naive {:.4}",
                m.name(),
                otf.0,
                naive.0
            );
            assert!(
                otf.0 <= lw.0 + 1e-9,
                "{}: OTF {:.4} > LW {:.4}",
                m.name(),
                otf.0,
                lw.0
            );
            assert!(
                otf.0 <= ttf.0 + 0.01,
                "{}: OTF {:.4} ≫ TTF {:.4}",
                m.name(),
                otf.0,
                ttf.0
            );
            for (name, other) in [("Naive", naive.1), ("LW", lw.1), ("TTF", ttf.1)] {
                assert!(
                    otf.1 <= other + 1e-9,
                    "{}: OTF total {:.4} > {name} total {other:.4}",
                    m.name(),
                    otf.1
                );
            }
        }
    }
}
