//! Breakdown accounting: attributing every instant of the iteration to a
//! category, reproducing the stacked-bar semantics of Fig. 2 / Fig. 9.
//!
//! Attribution rules, in precedence order over each elementary interval:
//!
//! 1. the representative GPU's compute stream is busy → that task's tag;
//! 2. any other GPU computes (only the inverse phase schedules there) → that
//!    task's tag;
//! 3. the network is busy → that task's tag (this is exactly the
//!    **non-overlapped** communication time: comm hidden behind compute is
//!    attributed to the compute);
//! 4. nothing is busy → idle.

use crate::graph::{Tag, TaskSpan};

/// Per-category seconds of one simulated iteration; categories sum to
/// [`SimReport::total`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Feed-forward + backward compute.
    pub ff_bp: f64,
    /// Non-overlapped gradient all-reduce time.
    pub grad_comm: f64,
    /// Kronecker-factor construction compute.
    pub factor_comp: f64,
    /// Non-overlapped factor all-reduce time.
    pub factor_comm: f64,
    /// Matrix-inversion compute.
    pub inverse_comp: f64,
    /// Non-overlapped inverse broadcast time.
    pub inverse_comm: f64,
    /// Preconditioning / update compute.
    pub other: f64,
    /// Dead time (scheduling gaps).
    pub idle: f64,
}

impl Breakdown {
    /// Sum of all categories (= iteration time).
    pub fn total(&self) -> f64 {
        self.ff_bp
            + self.grad_comm
            + self.factor_comp
            + self.factor_comm
            + self.inverse_comp
            + self.inverse_comm
            + self.other
            + self.idle
    }

    fn slot(&mut self, tag: Tag) -> &mut f64 {
        match tag {
            Tag::FfBp => &mut self.ff_bp,
            Tag::GradComm => &mut self.grad_comm,
            Tag::FactorComp => &mut self.factor_comp,
            Tag::FactorComm => &mut self.factor_comm,
            Tag::InverseComp => &mut self.inverse_comp,
            Tag::InverseComm => &mut self.inverse_comm,
            Tag::Other => &mut self.other,
        }
    }
}

/// Result of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Iteration wall-clock time.
    pub total: f64,
    /// Category attribution (sums to `total`).
    pub breakdown: Breakdown,
    /// The raw task schedule, for traces and plots.
    pub spans: Vec<TaskSpan>,
}

/// Builds a report from a simulated schedule.
///
/// Resources `0..num_gpus` are compute streams (resource 0 is the
/// representative GPU); every resource `>= num_gpus` is a network link
/// (one shared link under the serialized model, one per root under the
/// per-root-parallel model).
pub fn attribute(spans: Vec<TaskSpan>, num_gpus: usize) -> SimReport {
    attribute_impl(spans, 0, num_gpus)
}

fn attribute_impl(spans: Vec<TaskSpan>, gpu0: usize, num_gpus: usize) -> SimReport {
    let total = spans.iter().map(|s| s.end).fold(0.0, f64::max);
    // Elementary intervals from all span endpoints.
    let mut points: Vec<f64> = Vec::with_capacity(spans.len() * 2 + 1);
    points.push(0.0);
    for s in &spans {
        points.push(s.start);
        points.push(s.end);
    }
    points.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    points.dedup();

    let gpu0_spans: Vec<&TaskSpan> = spans.iter().filter(|s| s.resource == gpu0).collect();
    let other_gpu_spans: Vec<&TaskSpan> = spans
        .iter()
        .filter(|s| s.resource != gpu0 && s.resource < num_gpus)
        .collect();
    let net_spans: Vec<&TaskSpan> = spans.iter().filter(|s| s.resource >= num_gpus).collect();

    let covering = |set: &[&TaskSpan], t: f64| -> Option<Tag> {
        set.iter()
            .find(|s| s.start <= t && t < s.end && s.end > s.start)
            .map(|s| s.tag)
    };

    let mut breakdown = Breakdown::default();
    for w in points.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 <= t0 {
            continue;
        }
        let mid = 0.5 * (t0 + t1);
        let len = t1 - t0;
        let tag = covering(&gpu0_spans, mid)
            .or_else(|| covering(&other_gpu_spans, mid))
            .or_else(|| covering(&net_spans, mid));
        match tag {
            Some(t) => *breakdown.slot(t) += len,
            None => breakdown.idle += len,
        }
    }
    SimReport {
        total,
        breakdown,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Tag, TaskGraph};

    #[test]
    fn breakdown_sums_to_total() {
        let mut g = TaskGraph::new(2);
        let a = g.push(0, 1.0, &[], Tag::FfBp);
        g.push(1, 3.0, &[a], Tag::GradComm);
        let r = attribute(g.simulate(), 1);
        assert!((r.breakdown.total() - r.total).abs() < 1e-12);
        assert_eq!(r.total, 4.0);
    }

    #[test]
    fn hidden_comm_attributed_to_compute() {
        // Comm runs 0..2 entirely under compute 0..3 ⇒ zero non-overlapped
        // comm time.
        let mut g = TaskGraph::new(2);
        g.push(0, 3.0, &[], Tag::FfBp);
        g.push(1, 2.0, &[], Tag::FactorComm);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.breakdown.factor_comm, 0.0);
        assert_eq!(r.breakdown.ff_bp, 3.0);
    }

    #[test]
    fn exposed_comm_counts() {
        let mut g = TaskGraph::new(2);
        let a = g.push(0, 1.0, &[], Tag::FfBp);
        g.push(1, 2.0, &[a], Tag::FactorComm);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.breakdown.ff_bp, 1.0);
        assert_eq!(r.breakdown.factor_comm, 2.0);
    }

    #[test]
    fn other_gpu_inverse_compute_counts_when_gpu0_idle() {
        // GPU 1 (resource 1) inverts while GPU 0 idles; network silent.
        let mut g = TaskGraph::new(3);
        g.push(1, 2.0, &[], Tag::InverseComp);
        let r = attribute(g.simulate(), 2);
        assert_eq!(r.breakdown.inverse_comp, 2.0);
        assert_eq!(r.breakdown.idle, 0.0);
    }

    #[test]
    fn gaps_become_idle() {
        let mut g = TaskGraph::new(2);
        let a = g.push(1, 1.0, &[], Tag::GradComm);
        let _b = g.push(0, 1.0, &[a], Tag::FfBp);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.breakdown.idle, 0.0); // comm covers 0..1, compute 1..2
        assert_eq!(r.total, 2.0);
    }

    #[test]
    fn empty_schedule() {
        let g = TaskGraph::new(2);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.total, 0.0);
        assert_eq!(r.breakdown.total(), 0.0);
    }
}
