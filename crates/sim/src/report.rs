//! Breakdown accounting: attributing every instant of the iteration to a
//! category, reproducing the stacked-bar semantics of Fig. 2 / Fig. 9.
//!
//! The attribution itself lives in [`spdkfac_obs::attribute`] — the same
//! covering rules score simulated schedules and measured recordings, and
//! [`Breakdown`] *is* [`spdkfac_obs::IterationBreakdown`], so a simulated
//! and a measured iteration compare field-for-field. Rules, in precedence
//! order over each elementary interval:
//!
//! 1. the representative GPU's compute stream is busy → that task's tag;
//! 2. any other GPU computes (only the inverse phase schedules there) → that
//!    task's tag;
//! 3. the network is busy → that task's tag (this is exactly the
//!    **non-overlapped** communication time: comm hidden behind compute is
//!    attributed to the compute);
//! 4. nothing is busy → idle.

use crate::graph::{to_obs_spans, TaskSpan};

/// Per-category seconds of one simulated iteration; categories sum to
/// [`SimReport::total`]. Alias of the shared
/// [`spdkfac_obs::IterationBreakdown`].
pub type Breakdown = spdkfac_obs::IterationBreakdown;

/// Result of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Iteration wall-clock time.
    pub total: f64,
    /// Category attribution (sums to `total`).
    pub breakdown: Breakdown,
    /// The raw task schedule, for traces and plots.
    pub spans: Vec<TaskSpan>,
}

/// Builds a report from a simulated schedule.
///
/// Resources `0..num_gpus` are compute streams (resource 0 is the
/// representative GPU); every resource `>= num_gpus` is a network link
/// (one shared link under the serialized model, one per root under the
/// per-root-parallel model).
pub fn attribute(spans: Vec<TaskSpan>, num_gpus: usize) -> SimReport {
    let total = spans.iter().map(|s| s.end).fold(0.0, f64::max);
    let mut breakdown = spdkfac_obs::attribute(&to_obs_spans(&spans), num_gpus);
    // The shared attribution measures from the earliest span start; the
    // simulator's clock starts at t = 0, so any lead-in is idle time.
    let origin = spans
        .iter()
        .filter(|s| s.end > s.start)
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    if origin.is_finite() && origin > 0.0 {
        breakdown.idle += origin;
    }
    SimReport {
        total,
        breakdown,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Tag, TaskGraph, TaskSpan};

    #[test]
    fn breakdown_sums_to_total() {
        let mut g = TaskGraph::new(2);
        let a = g.push(0, 1.0, &[], Tag::FfBp);
        g.push(1, 3.0, &[a], Tag::GradComm);
        let r = attribute(g.simulate(), 1);
        assert!((r.breakdown.total() - r.total).abs() < 1e-12);
        assert_eq!(r.total, 4.0);
    }

    #[test]
    fn hidden_comm_attributed_to_compute() {
        // Comm runs 0..2 entirely under compute 0..3 ⇒ zero non-overlapped
        // comm time.
        let mut g = TaskGraph::new(2);
        g.push(0, 3.0, &[], Tag::FfBp);
        g.push(1, 2.0, &[], Tag::FactorComm);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.breakdown.factor_comm, 0.0);
        assert_eq!(r.breakdown.ff_bp, 3.0);
    }

    #[test]
    fn exposed_comm_counts() {
        let mut g = TaskGraph::new(2);
        let a = g.push(0, 1.0, &[], Tag::FfBp);
        g.push(1, 2.0, &[a], Tag::FactorComm);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.breakdown.ff_bp, 1.0);
        assert_eq!(r.breakdown.factor_comm, 2.0);
    }

    #[test]
    fn other_gpu_inverse_compute_counts_when_gpu0_idle() {
        // GPU 1 (resource 1) inverts while GPU 0 idles; network silent.
        let mut g = TaskGraph::new(3);
        g.push(1, 2.0, &[], Tag::InverseComp);
        let r = attribute(g.simulate(), 2);
        assert_eq!(r.breakdown.inverse_comp, 2.0);
        assert_eq!(r.breakdown.idle, 0.0);
    }

    #[test]
    fn gaps_become_idle() {
        let mut g = TaskGraph::new(2);
        let a = g.push(1, 1.0, &[], Tag::GradComm);
        let _b = g.push(0, 1.0, &[a], Tag::FfBp);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.breakdown.idle, 0.0); // comm covers 0..1, compute 1..2
        assert_eq!(r.total, 2.0);
    }

    #[test]
    fn empty_schedule() {
        let g = TaskGraph::new(2);
        let r = attribute(g.simulate(), 1);
        assert_eq!(r.total, 0.0);
        assert_eq!(r.breakdown.total(), 0.0);
    }

    #[test]
    fn delayed_start_counts_as_idle() {
        // A schedule whose first task starts after t = 0 keeps breakdown
        // totalling to the wall time (lead-in attributed as idle).
        let spans = vec![TaskSpan {
            start: 2.0,
            end: 3.0,
            resource: 0,
            tag: Tag::FfBp,
            meta: spdkfac_obs::SpanMeta::default(),
        }];
        let r = attribute(spans, 1);
        assert_eq!(r.total, 3.0);
        assert_eq!(r.breakdown.idle, 2.0);
        assert!((r.breakdown.total() - r.total).abs() < 1e-12);
    }
}
