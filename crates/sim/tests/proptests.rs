//! Property tests for the task-graph simulator and the scheduling
//! invariants of the iteration builders.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use spdkfac_models::resnet50;
use spdkfac_sim::graph::{Tag, TaskGraph};
use spdkfac_sim::{simulate_iteration, Algo, SimConfig};

/// Strategy: a random but causally-valid task graph.
fn graph_strategy() -> impl Strategy<Value = TaskGraph> {
    (1usize..5, 1usize..40).prop_flat_map(|(resources, n)| {
        pvec(
            (0usize..resources, 0.0f64..2.0, pvec(0usize..n.max(1), 0..3)),
            n,
        )
        .prop_map(move |tasks| {
            let mut g = TaskGraph::new(resources + 1);
            for (i, (res, dur, deps)) in tasks.into_iter().enumerate() {
                let deps: Vec<usize> = deps.into_iter().filter(|&d| d < i).collect();
                g.push(res, dur, &deps, Tag::FfBp);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_is_feasible(g in graph_strategy()) {
        let spans = g.simulate();
        // Every task starts after its deps and never overlaps a same-resource task.
        for (i, t) in g.tasks().iter().enumerate() {
            for &d in &t.deps {
                prop_assert!(spans[i].start >= spans[d].end - 1e-12);
            }
            prop_assert!((spans[i].end - spans[i].start - t.duration).abs() < 1e-12);
        }
        let n = g.tasks().len();
        for i in 0..n {
            for j in (i + 1)..n {
                if g.tasks()[i].resource == g.tasks()[j].resource {
                    let (a, b) = (&spans[i], &spans[j]);
                    prop_assert!(a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12,
                        "overlap on resource {}", g.tasks()[i].resource);
                }
            }
        }
    }

    #[test]
    fn makespan_monotone_in_task_duration(g in graph_strategy(), pick in 0usize..40, extra in 0.0f64..3.0) {
        let before = g.makespan();
        let mut g2 = g.clone();
        let n = g2.tasks().len();
        let idx = pick % n;
        let d = g2.tasks()[idx].duration;
        g2.set_duration(idx, d + extra);
        prop_assert!(g2.makespan() >= before - 1e-12);
    }

    #[test]
    fn iteration_breakdown_always_sums(world in 1usize..65, algo_pick in 0usize..6) {
        let algo = [Algo::SgdSingle, Algo::KfacSingle, Algo::SSgd, Algo::DKfac, Algo::MpdKfac, Algo::SpdKfac][algo_pick];
        let cfg = SimConfig::paper_testbed(world);
        let r = simulate_iteration(&resnet50(), &cfg, algo);
        prop_assert!((r.breakdown.total() - r.total).abs() < 1e-9);
        prop_assert!(r.total > 0.0);
    }

    #[test]
    fn faster_hardware_never_slows_iterations(speedup in 1.0f64..8.0, algo_pick in 0usize..4) {
        let algo = [Algo::SSgd, Algo::DKfac, Algo::MpdKfac, Algo::SpdKfac][algo_pick];
        let slow = SimConfig::paper_testbed(32);
        let mut fast = slow.clone();
        fast.hw.gemm_flops *= speedup;
        fast.hw.factor_flops *= speedup;
        fast.hw.allreduce.beta /= speedup;
        fast.hw.bcast.beta /= speedup;
        fast.hw.inverse.alpha /= speedup;
        let m = resnet50();
        let ts = simulate_iteration(&m, &slow, algo).total;
        let tf = simulate_iteration(&m, &fast, algo).total;
        prop_assert!(tf <= ts + 1e-9, "{algo:?}: {tf} > {ts}");
    }

    #[test]
    fn spd_never_loses_to_dkfac(world in 2usize..129) {
        let cfg = SimConfig::paper_testbed(world);
        let m = resnet50();
        let d = simulate_iteration(&m, &cfg, Algo::DKfac).total;
        let spd = simulate_iteration(&m, &cfg, Algo::SpdKfac).total;
        prop_assert!(spd <= d + 1e-9, "world={world}: SPD {spd} > D {d}");
    }
}
