//! Property tests for the task-graph simulator and the scheduling
//! invariants of the iteration builders.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use spdkfac_core::placement::{PlacementContext, TensorAssignment};
use spdkfac_models::resnet50;
use spdkfac_sim::graph::{Tag, TaskGraph};
use spdkfac_sim::{policy_registry, simulate_iteration, Algo, SimConfig};

/// Strategy: a random but causally-valid task graph.
fn graph_strategy() -> impl Strategy<Value = TaskGraph> {
    (1usize..5, 1usize..40).prop_flat_map(|(resources, n)| {
        pvec(
            (0usize..resources, 0.0f64..2.0, pvec(0usize..n.max(1), 0..3)),
            n,
        )
        .prop_map(move |tasks| {
            let mut g = TaskGraph::new(resources + 1);
            for (i, (res, dur, deps)) in tasks.into_iter().enumerate() {
                let deps: Vec<usize> = deps.into_iter().filter(|&d| d < i).collect();
                g.push(res, dur, &deps, Tag::FfBp);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_is_feasible(g in graph_strategy()) {
        let spans = g.simulate();
        // Every task starts after its deps and never overlaps a same-resource task.
        for (i, t) in g.tasks().iter().enumerate() {
            for &d in &t.deps {
                prop_assert!(spans[i].start >= spans[d].end - 1e-12);
            }
            prop_assert!((spans[i].end - spans[i].start - t.duration).abs() < 1e-12);
        }
        let n = g.tasks().len();
        for i in 0..n {
            for j in (i + 1)..n {
                if g.tasks()[i].resource == g.tasks()[j].resource {
                    let (a, b) = (&spans[i], &spans[j]);
                    prop_assert!(a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12,
                        "overlap on resource {}", g.tasks()[i].resource);
                }
            }
        }
    }

    #[test]
    fn makespan_monotone_in_task_duration(g in graph_strategy(), pick in 0usize..40, extra in 0.0f64..3.0) {
        let before = g.makespan();
        let mut g2 = g.clone();
        let n = g2.tasks().len();
        let idx = pick % n;
        let d = g2.tasks()[idx].duration;
        g2.set_duration(idx, d + extra);
        prop_assert!(g2.makespan() >= before - 1e-12);
    }

    #[test]
    fn iteration_breakdown_always_sums(world in 1usize..65, algo_pick in 0usize..6) {
        let algo = [Algo::SgdSingle, Algo::KfacSingle, Algo::SSgd, Algo::DKfac, Algo::MpdKfac, Algo::SpdKfac][algo_pick];
        let cfg = SimConfig::paper_testbed(world);
        let r = simulate_iteration(&resnet50(), &cfg, algo);
        prop_assert!((r.breakdown.total() - r.total).abs() < 1e-9);
        prop_assert!(r.total > 0.0);
    }

    #[test]
    fn faster_hardware_never_slows_iterations(speedup in 1.0f64..8.0, algo_pick in 0usize..4) {
        let algo = [Algo::SSgd, Algo::DKfac, Algo::MpdKfac, Algo::SpdKfac][algo_pick];
        let slow = SimConfig::paper_testbed(32);
        let mut fast = slow.clone();
        fast.hw.gemm_flops *= speedup;
        fast.hw.factor_flops *= speedup;
        fast.hw.allreduce.beta /= speedup;
        fast.hw.bcast.beta /= speedup;
        fast.hw.inverse.alpha /= speedup;
        let m = resnet50();
        let ts = simulate_iteration(&m, &slow, algo).total;
        let tf = simulate_iteration(&m, &fast, algo).total;
        prop_assert!(tf <= ts + 1e-9, "{algo:?}: {tf} > {ts}");
    }

    #[test]
    fn placement_policies_are_pure_over_shuffled_tensor_orderings(
        n in 1usize..24,
        world in 1usize..17,
        seed in pvec(0usize..1000, 24),
    ) {
        // Distinct dims: cost-sorted policies then have no index tie-breaks,
        // so the dim → assignment map must be exactly permutation-invariant.
        let mut dims = Vec::with_capacity(n);
        let mut d = 16usize;
        for i in 0..n {
            d += 1 + seed[i % seed.len()] % 50;
            dims.push(d);
        }
        // Seeded Fisher–Yates permutation of the tensor order.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, seed[i % seed.len()] % (i + 1));
        }
        let shuffled: Vec<usize> = perm.iter().map(|&i| dims[i]).collect();

        let hw = SimConfig::paper_testbed(world.max(2)).hw;
        let ctx = PlacementContext::new(&dims, world, &hw.inverse, &hw.bcast)
            .with_gpus_per_node(4);
        let ctx_s = PlacementContext::new(&shuffled, world, &hw.inverse, &hw.bcast)
            .with_gpus_per_node(4);
        for policy in policy_registry() {
            let name = policy.name();
            // Purity: the same context yields the same placement twice.
            let a = policy.place(&ctx);
            prop_assert_eq!(&a, &policy.place(&ctx), "{} is impure", &name);
            // Validity on both orderings.
            let s = policy.place(&ctx_s);
            for plc in [&a, &s] {
                prop_assert_eq!(plc.assignments().len(), n);
                for t in plc.assignments() {
                    if let TensorAssignment::Gpu(p) = t {
                        prop_assert!(*p < world, "{}: gpu {} >= world {}", &name, p, world);
                    }
                }
            }
            // seq-dist round-robins by position and topo pairs neighbours
            // by position, so only their validity is order-independent; every
            // cost-sorted policy must give each dim the identical assignment
            // no matter where it sits in the input.
            if name != "seq-dist" && name != "topo" {
                for (j, &i) in perm.iter().enumerate() {
                    prop_assert_eq!(
                        s.assignments()[j],
                        a.assignments()[i],
                        "{}: dim {} moved", &name, shuffled[j]
                    );
                }
            }
        }
    }

    #[test]
    fn spd_never_loses_to_dkfac(world in 2usize..129) {
        let cfg = SimConfig::paper_testbed(world);
        let m = resnet50();
        let d = simulate_iteration(&m, &cfg, Algo::DKfac).total;
        let spd = simulate_iteration(&m, &cfg, Algo::SpdKfac).total;
        prop_assert!(spd <= d + 1e-9, "world={world}: SPD {spd} > D {d}");
    }
}
