//! Offline subset of the [Criterion](https://docs.rs/criterion) API.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the slice of Criterion the bench targets use:
//! [`Criterion`] / [`BenchmarkGroup`] / [`Bencher`] / [`BenchmarkId`] and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! straightforward warm-up + timed-sample loop reporting mean / min / max
//! per benchmark — enough to compare kernels locally, with none of
//! Criterion's statistics, plots, or baseline storage.

use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Top-level driver handed to every bench function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time across all samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let cfg = self.clone();
        run_one(&cfg, &id.into().label, f);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let cfg = self.criterion.clone();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&cfg, &label, |b| f(b, input));
        self
    }

    /// Benchmarks a routine with no extra input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let cfg = self.criterion.clone();
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&cfg, &label, f);
        self
    }

    /// Ends the group (report lines are emitted eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Timing harness passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to fill the
    /// configured measurement budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / self.iters_per_sample.max(1) as u32);
        }
    }
}

fn run_one(cfg: &Criterion, label: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up pass: single-iteration samples until the warm-up budget is
    // spent; the observed per-iteration time sizes the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut probe = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_budget: 1,
    };
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut probe);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = if probe.samples.is_empty() {
        Duration::from_micros(1)
    } else {
        probe.samples.iter().sum::<Duration>() / probe.samples.len() as u32
    };
    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_secs_f64() / per_iter.as_secs_f64().max(1e-9))
        .ceil()
        .clamp(1.0, 1e7) as u64;

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample,
        sample_budget: cfg.sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("{label:<40} (no samples — did the closure call b.iter()?)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let mean = bencher.samples.iter().sum::<Duration>() / n;
    let min = *bencher.samples.iter().min().expect("non-empty");
    let max = *bencher.samples.iter().max().expect("non-empty");
    eprintln!(
        "{label:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples × {iters_per_sample} iters)"
    );
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_works() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x + x))
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("a", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn macro_group_runs() {
        benches();
    }
}
