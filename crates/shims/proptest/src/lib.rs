//! Offline subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the slice of proptest the test-suite actually uses:
//! range/tuple/vec strategies, `prop_map` / `prop_flat_map`, the
//! `proptest!` macro with `ProptestConfig`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! xoshiro256++ stream (seed overridable via `PROPTEST_SEED`); there is no
//! shrinking — failures report the case number and RNG state instead.

use std::fmt;
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Deterministic generator backing every sampled value (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: empty range");
        // Multiply-shift bounded rejection-free mapping is fine for tests.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Current internal state, folded for diagnostics.
    pub fn state(&self) -> u64 {
        self.s[0] ^ self.s[1] ^ self.s[2] ^ self.s[3]
    }
}

/// Builds the RNG for one property, honouring `PROPTEST_SEED` when set.
pub fn test_rng(name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5bd1_e995_0b97_f4a7);
    // FNV-1a over the property name decorrelates sibling properties.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(base ^ h)
}

/// Error signalled by a failing or rejected test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` filter — skipped, not failed.
    Reject(String),
    /// The case failed a `prop_assert*!`.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-property configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions that run their body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let rng_state = rng.state();
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property {} failed at case {case} (rng state {rng_state:#018x}): {msg}",
                            stringify!($name)
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind first so negating a partial-ord comparison expression at the
        // use site does not trip `neg_cmp_op_on_partial_ord`.
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format_args!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {} ({va:?} vs {vb:?})", stringify!($a), stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {} ({va:?} vs {vb:?}): {}",
                stringify!($a), stringify!($b), format_args!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err($crate::TestCaseError::Fail(format!(
                "{} == {} ({va:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::collection::vec as pvec;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let u = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f64..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = (-4i32..4).sample(&mut rng);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let exact = pvec(0usize..5, 6).sample(&mut rng);
            assert_eq!(exact.len(), 6);
            let ranged = pvec(0usize..5, 1..4).sample(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(3);
        let s = (1usize..5).prop_flat_map(|n| pvec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_cases(a in 0usize..10, b in 0.0f64..1.0) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert!(b < 1.0, "b={b}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
