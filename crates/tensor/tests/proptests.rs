//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use spdkfac_tensor::rng::MatrixRng;
use spdkfac_tensor::{chol, kron, Matrix, SymPacked};

/// Strategy: a dimension in a range small enough for exhaustive checks.
fn dim() -> impl Strategy<Value = usize> {
    1usize..20
}

/// Strategy: a GEMM edge length straddling the microkernel (4×8) and cache
/// block (64) boundaries, including non-multiples of every block size and
/// sizes large enough to cross into the packed SYRK path.
fn gemm_dim() -> impl Strategy<Value = usize> {
    1usize..140
}

/// Naive triple-loop product — the ground truth the packed kernels are
/// checked against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spd_inverse_roundtrips(d in dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(d, 0.1);
        let inv = chol::spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(d)) < 1e-7);
    }

    #[test]
    fn cholesky_reconstructs(d in dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(d, 0.1);
        let ch = chol::cholesky(&a).unwrap();
        let rebuilt = ch.factor().matmul(&ch.factor().transpose());
        prop_assert!(rebuilt.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn solve_consistent_with_inverse(d in dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(d, 0.2);
        let b = rng.uniform_vec(d, -1.0, 1.0);
        let ch = chol::cholesky(&a).unwrap();
        let x_solve = ch.solve(&b);
        let x_inv = ch.inverse().matvec(&b);
        for (l, r) in x_solve.iter().zip(x_inv.iter()) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn sympacked_roundtrip(d in dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let x = rng.gaussian_matrix(d + 1, d);
        let sym = x.gramian();
        let packed = SymPacked::from_matrix(&sym);
        prop_assert_eq!(packed.len(), d * (d + 1) / 2);
        prop_assert!(packed.to_matrix().max_abs_diff(&sym) < 1e-15);
    }

    #[test]
    fn gramian_is_psd_diagonal_nonnegative(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let x = rng.gaussian_matrix(rows, cols);
        let g = x.gramian();
        for i in 0..cols {
            prop_assert!(g[(i, i)] >= 0.0);
        }
        prop_assert_eq!(g.max_asymmetry(), 0.0);
    }

    #[test]
    fn kron_vec_identity(din in 1usize..6, dout in 1usize..6, seed in 0u64..1_000_000) {
        // (A ⊗ G) vec(X) == vec(G X A) for symmetric A (col-major vec).
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(din, 0.1);
        let g = rng.spd_matrix(dout, 0.1);
        let x = rng.uniform_matrix(dout, din, -1.0, 1.0);

        let fast = kron::precondition_gradient(&x, &a, &g);
        let big = kron::kron(&a, &g);
        let v = kron::vec_col_major(&x);
        let explicit = kron::unvec_col_major(&big.matvec(&v), dout, din);
        prop_assert!(fast.max_abs_diff(&explicit) < 1e-9);
    }

    #[test]
    fn matmul_associative(seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let b = rng.uniform_matrix(6, 3, -1.0, 1.0);
        let c = rng.uniform_matrix(3, 5, -1.0, 1.0);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn damping_shifts_trace(d in dim(), gamma in 0.0f64..10.0, seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(d, 0.0);
        let damped = a.damped(gamma);
        prop_assert!((damped.trace() - a.trace() - gamma * d as f64).abs() < 1e-9);
    }

    #[test]
    fn packed_gemm_matches_naive(m in gemm_dim(), k in gemm_dim(), n in gemm_dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        prop_assert!(a.matmul(&b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-12);
    }

    #[test]
    fn transpose_free_gemm_matches_naive(m in gemm_dim(), k in gemm_dim(), n in gemm_dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        // A · Bᵀ without materialising Bᵀ.
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let bt = rng.uniform_matrix(n, k, -1.0, 1.0);
        prop_assert!(a.matmul_nt(&bt).max_abs_diff(&naive_matmul(&a, &bt.transpose())) < 1e-12);
        // Aᵀ · B without materialising Aᵀ.
        let at = rng.uniform_matrix(k, m, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        prop_assert!(at.matmul_tn(&b).max_abs_diff(&naive_matmul(&at.transpose(), &b)) < 1e-12);
    }

    #[test]
    fn syrk_matches_naive(rows in gemm_dim(), d in gemm_dim(), seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let x = rng.uniform_matrix(rows, d, -1.0, 1.0);
        let gram = x.gramian();
        prop_assert!(gram.max_abs_diff(&naive_matmul(&x.transpose(), &x)) < 1e-12);
        prop_assert_eq!(gram.max_asymmetry(), 0.0);
        let outer = x.syrk_nt();
        prop_assert!(outer.max_abs_diff(&naive_matmul(&x, &x.transpose())) < 1e-12);
        prop_assert_eq!(outer.max_asymmetry(), 0.0);
    }

    #[test]
    fn blocked_cholesky_matches_serial_reference(d in 2usize..40, nb in 1usize..17, seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(d, 0.5);
        let reference = chol::cholesky_unblocked(&a).unwrap();
        let blocked = chol::cholesky_with_block(&a, nb).unwrap();
        prop_assert!(blocked.factor().max_abs_diff(reference.factor()) < 1e-12);
    }

    #[test]
    fn blocked_inverse_matches_serial_reference(d in 2usize..40, nb in 1usize..17, seed in 0u64..1_000_000) {
        let mut rng = MatrixRng::new(seed);
        let a = rng.spd_matrix(d, 0.5);
        let ch = chol::cholesky(&a).unwrap();
        let blocked = ch.inverse_with_block(nb);
        prop_assert!(blocked.max_abs_diff(&ch.inverse_unblocked()) < 1e-12);
        prop_assert_eq!(blocked.max_asymmetry(), 0.0);
    }
}
