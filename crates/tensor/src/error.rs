//! Error types for the linear-algebra kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ///
    /// `op` names the operation, `lhs`/`rhs` are the offending `(rows, cols)`
    /// shapes.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not (numerically)
    /// symmetric positive definite. Carries the pivot column at which the
    /// factorization broke down.
    NotPositiveDefinite {
        /// Pivot index at which a non-positive diagonal was encountered.
        pivot: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::NotSquare { op, shape } => {
                write!(
                    f,
                    "{op} requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            TensorError::NotPositiveDefinite { pivot } => write!(
                f,
                "matrix is not positive definite (breakdown at pivot {pivot})"
            ),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn not_square_display() {
        let e = TensorError::NotSquare {
            op: "cholesky",
            shape: (3, 4),
        };
        assert!(e.to_string().contains("cholesky"));
    }

    #[test]
    fn not_spd_display_mentions_pivot() {
        let e = TensorError::NotPositiveDefinite { pivot: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
