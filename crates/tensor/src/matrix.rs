//! A row-major dense `f64` matrix and the handful of BLAS-like kernels the
//! K-FAC reproduction needs.
//!
//! Products ([`Matrix::matmul`], the transpose-free [`Matrix::matmul_nt`] /
//! [`Matrix::matmul_tn`] variants) and symmetric rank-k accumulations
//! ([`Matrix::gramian`], [`Matrix::syrk_nt`]) dispatch to the packed,
//! pool-parallel kernels in [`crate::gemm`]; results are bit-identical for
//! any `SPDKFAC_THREADS` setting (see [`crate::pool`] for the determinism
//! contract).

use crate::error::TensorError;
use crate::gemm;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense, row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_show) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            if self.cols > max_show {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix that owns `data`, interpreted row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a square diagonal matrix from its diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Dense matrix product `self · rhs`.
    ///
    /// Dispatches to the packed, pool-parallel GEMM in [`crate::gemm`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`; use [`Matrix::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul: shape mismatch")
    }

    /// Fallible matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let data = if gemm::reference_kernels() {
            gemm::matmul_reference(m, k, n, &self.data, &rhs.data)
        } else {
            gemm::gemm(false, false, m, k, n, &self.data, &rhs.data)
        };
        Ok(Matrix::from_vec(m, n, data))
    }

    /// Transpose-free product `self · rhsᵀ`.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose())` without materialising
    /// the transpose: the GEMM packing routine reads `rhs` column-wise.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: shape mismatch {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if gemm::reference_kernels() {
            return self.matmul(&rhs.transpose());
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        Matrix::from_vec(
            m,
            n,
            gemm::gemm(false, true, m, k, n, &self.data, &rhs.data),
        )
    }

    /// Transpose-free product `selfᵀ · rhs`.
    ///
    /// Equivalent to `self.transpose().matmul(rhs)` without materialising
    /// the transpose: the GEMM packing routine reads `self` column-wise.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: shape mismatch ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if gemm::reference_kernels() {
            return self.transpose().matmul(rhs);
        }
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        Matrix::from_vec(
            m,
            n,
            gemm::gemm(true, false, m, k, n, &self.data, &rhs.data),
        )
    }

    /// Gramian `selfᵀ · self` exploiting symmetry (computes the upper triangle
    /// at half the FLOPs of the equivalent GEMM and mirrors it).
    ///
    /// This is the kernel behind the Kronecker-factor computations
    /// `A = E[a aᵀ]` and `G = E[g gᵀ]` (Eq. 7/8), where the rows of `self`
    /// are per-sample activation / gradient vectors. Dispatches to the
    /// blocked, pool-parallel SYRK in [`crate::gemm`].
    pub fn gramian(&self) -> Matrix {
        let (n, d) = (self.rows, self.cols);
        let data = if gemm::reference_kernels() {
            gemm::gramian_reference(n, d, &self.data)
        } else {
            gemm::syrk_tn(n, d, &self.data)
        };
        Matrix::from_vec(d, d, data)
    }

    /// Symmetric rank-k product `self · selfᵀ` (the `AAᵀ` companion of
    /// [`Matrix::gramian`]) at half the FLOPs of the equivalent GEMM.
    pub fn syrk_nt(&self) -> Matrix {
        if gemm::reference_kernels() {
            return self.matmul(&self.transpose());
        }
        let (n, d) = (self.rows, self.cols);
        Matrix::from_vec(n, n, gemm::syrk_nt(n, d, &self.data))
    }

    /// Gramian scaled by `1/scale`: `selfᵀ·self / scale`.
    ///
    /// K-FAC averages the factor statistics over the mini-batch (and over the
    /// spatial positions for convolutions), so this saves a second pass.
    pub fn gramian_scaled(&self, scale: f64) -> Matrix {
        let mut g = self.gramian();
        g.scale(1.0 / scale);
        g
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: length mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            *o = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Adds `gamma · I` in place (Tikhonov damping, Eq. 12).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_scaled_identity(&mut self, gamma: f64) {
        assert!(self.is_square(), "add_scaled_identity requires square");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += gamma;
        }
    }

    /// Returns a damped copy `self + gamma · I`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn damped(&self, gamma: f64) -> Matrix {
        let mut m = self.clone();
        m.add_scaled_identity(gamma);
        m
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self += alpha * other`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Exponential moving average update used for running factor statistics:
    /// `self = decay * self + (1 - decay) * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn ema_update(&mut self, decay: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "ema_update: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = decay * *a + (1.0 - decay) * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires square");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Largest absolute element-wise difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest absolute asymmetry `|a_ij - a_ji|`.
    ///
    /// Returns `0.0` for perfectly symmetric matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn max_asymmetry(&self) -> f64 {
        assert!(self.is_square(), "max_asymmetry requires square");
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Forces exact symmetry by averaging with the transpose, in place.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                let (n, c) = (self.rows, self.cols);
                let _ = n;
                self.data[i * c + j] = avg;
                self.data[j * c + i] = avg;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = MatrixRng::new(7);
        let a = rng.uniform_matrix(5, 9, -1.0, 1.0);
        assert_eq!(a.matmul(&Matrix::identity(9)), a);
        assert_eq!(Matrix::identity(5).matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular_matches_naive() {
        let mut rng = MatrixRng::new(11);
        let a = rng.uniform_matrix(13, 70, -2.0, 2.0);
        let b = rng.uniform_matrix(70, 29, -2.0, 2.0);
        let c = a.matmul(&b);
        // Naive reference.
        let mut naive = Matrix::zeros(13, 29);
        for i in 0..13 {
            for j in 0..29 {
                let mut s = 0.0;
                for k in 0..70 {
                    s += a[(i, k)] * b[(k, j)];
                }
                naive[(i, j)] = s;
            }
        }
        assert!(c.max_abs_diff(&naive) < 1e-12);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = MatrixRng::new(21);
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (7, 5, 3),
            (64, 32, 48),
            (130, 70, 90),
        ] {
            let a = rng.uniform_matrix(m, k, -2.0, 2.0);
            let b = rng.uniform_matrix(n, k, -2.0, 2.0);
            let explicit = a.matmul(&b.transpose());
            let fused = a.matmul_nt(&b);
            assert!(
                fused.max_abs_diff(&explicit) < 1e-12,
                "matmul_nt mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = MatrixRng::new(22);
        for (m, k, n) in [(1usize, 1usize, 1usize), (5, 7, 3), (70, 33, 65)] {
            let a = rng.uniform_matrix(k, m, -2.0, 2.0);
            let b = rng.uniform_matrix(k, n, -2.0, 2.0);
            let explicit = a.transpose().matmul(&b);
            let fused = a.matmul_tn(&b);
            assert!(
                fused.max_abs_diff(&explicit) < 1e-12,
                "matmul_tn mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn syrk_nt_matches_explicit_transpose() {
        let mut rng = MatrixRng::new(23);
        for (n, d) in [(1usize, 1usize), (6, 9), (65, 40)] {
            let x = rng.uniform_matrix(n, d, -2.0, 2.0);
            let explicit = x.matmul(&x.transpose());
            let fused = x.syrk_nt();
            assert!(
                fused.max_abs_diff(&explicit) < 1e-12,
                "syrk_nt mismatch at {n}x{d}"
            );
            assert_eq!(fused.max_asymmetry(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "matmul_nt: shape mismatch")]
    fn matmul_nt_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = a.matmul_nt(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_tn: shape mismatch")]
    fn matmul_tn_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let _ = a.matmul_tn(&b);
    }

    #[test]
    fn try_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            a.try_matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn gramian_matches_explicit_transpose_product() {
        let mut rng = MatrixRng::new(3);
        let x = rng.uniform_matrix(17, 6, -1.0, 1.0);
        let g = x.gramian();
        let explicit = x.transpose().matmul(&x);
        assert!(g.max_abs_diff(&explicit) < 1e-12);
        assert_eq!(g.max_asymmetry(), 0.0);
    }

    #[test]
    fn gramian_scaled_divides() {
        let x = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let g = x.gramian_scaled(4.0);
        assert_eq!(g[(0, 0)], 1.0);
        assert_eq!(g[(1, 1)], 1.0);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = MatrixRng::new(5);
        let a = rng.uniform_matrix(4, 7, -1.0, 1.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = MatrixRng::new(9);
        let a = rng.uniform_matrix(6, 4, -1.0, 1.0);
        let v: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let mv = a.matvec(&v);
        let col = Matrix::from_vec(4, 1, v);
        let ref_col = a.matmul(&col);
        for (i, &x) in mv.iter().enumerate() {
            assert!((x - ref_col[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn damping_adds_identity() {
        let a = Matrix::zeros(3, 3);
        let d = a.damped(0.5);
        assert_eq!(d.trace(), 1.5);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn ema_update_converges_to_target() {
        let target = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut running = Matrix::zeros(2, 2);
        for _ in 0..2000 {
            running.ema_update(0.95, &target);
        }
        assert!(running.max_abs_diff(&target) < 1e-10);
    }

    #[test]
    fn symmetrize_fixes_asymmetry() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        assert!(a.max_asymmetry() > 0.0);
        a.symmetrize();
        assert_eq!(a.max_asymmetry(), 0.0);
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn operator_overloads() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 1)], 8.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }
}
