//! Deterministic random generators for matrices and vectors.
//!
//! Every stochastic component of the reproduction (synthetic datasets, random
//! SPD test matrices, benchmark inputs) draws from [`MatrixRng`], a thin
//! seeded wrapper so that tests and experiments are reproducible run-to-run.

use crate::matrix::Matrix;

/// The raw generator behind [`MatrixRng`]: xoshiro256++ seeded through
/// splitmix64, dependency-free and identical on every platform.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded random generator producing matrices and vectors.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::rng::MatrixRng;
///
/// let mut a = MatrixRng::new(42);
/// let mut b = MatrixRng::new(42);
/// assert_eq!(a.uniform_matrix(2, 2, 0.0, 1.0), b.uniform_matrix(2, 2, 0.0, 1.0));
/// ```
#[derive(Debug)]
pub struct MatrixRng {
    rng: Xoshiro256,
    /// Cached second Box–Muller deviate.
    spare_gaussian: Option<f64>,
}

impl MatrixRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        MatrixRng {
            rng: Xoshiro256::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.rng.next_f64()
    }

    /// Standard-normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Avoid log(0).
        let u1: f64 = loop {
            let u = self.rng.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2: f64 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        ((self.rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Vector of uniform samples.
    pub fn uniform_vec(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.uniform(lo, hi)).collect()
    }

    /// Vector of `N(0, sigma²)` samples.
    pub fn gaussian_vec(&mut self, len: usize, sigma: f64) -> Vec<f64> {
        (0..len).map(|_| self.gaussian() * sigma).collect()
    }

    /// Matrix of uniform samples.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix {
        Matrix::from_vec(rows, cols, self.uniform_vec(rows * cols, lo, hi))
    }

    /// Matrix of standard-normal samples.
    pub fn gaussian_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.gaussian_vec(rows * cols, 1.0))
    }

    /// Random symmetric positive definite matrix `XᵀX/n + ridge·I`.
    pub fn spd_matrix(&mut self, dim: usize, ridge: f64) -> Matrix {
        let x = self.gaussian_matrix(dim + 4, dim);
        let mut a = x.gramian_scaled((dim + 4) as f64);
        a.add_scaled_identity(ridge);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chol::cholesky;

    #[test]
    fn deterministic_given_seed() {
        let mut a = MatrixRng::new(1);
        let mut b = MatrixRng::new(1);
        assert_eq!(a.gaussian_vec(10, 1.0), b.gaussian_vec(10, 1.0));
        assert_eq!(a.index(100), b.index(100));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MatrixRng::new(1);
        let mut b = MatrixRng::new(2);
        assert_ne!(a.uniform_vec(8, 0.0, 1.0), b.uniform_vec(8, 0.0, 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = MatrixRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = MatrixRng::new(4);
        let xs = rng.gaussian_vec(20_000, 1.0);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn spd_matrix_is_choleskyable() {
        let mut rng = MatrixRng::new(5);
        for d in [1, 4, 16] {
            let a = rng.spd_matrix(d, 1e-2);
            assert!(cholesky(&a).is_ok(), "spd_matrix not SPD at d={d}");
        }
    }

    #[test]
    fn index_stays_in_range() {
        let mut rng = MatrixRng::new(6);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }
}
