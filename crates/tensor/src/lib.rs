//! # spdkfac-tensor
//!
//! Dense and packed-symmetric linear algebra for the SPD-KFAC reproduction.
//!
//! The crate provides exactly the numerical kernels that K-FAC needs:
//!
//! - [`Matrix`]: a row-major dense `f64` matrix with GEMM, transpose-free
//!   `AᵀB`/`ABᵀ` products, Gramian/SYRK accumulation (`XᵀX`, `XXᵀ`),
//!   transpose and element-wise arithmetic.
//! - [`gemm`](mod@gemm): the packed, cache-blocked compute kernels behind
//!   `Matrix` — register-tiled GEMM microkernel, half-FLOP SYRK, and the
//!   serial reference kernels used for benchmarking/parity testing.
//! - [`pool`]: the shared persistent worker pool (sized by `SPDKFAC_THREADS`)
//!   that every parallel kernel dispatches through; results are bit-identical
//!   for any thread count.
//! - [`chol`]: blocked Cholesky factorization and SPD inversion — the CPU
//!   analogue of the cuSolver path the paper uses to invert damped Kronecker
//!   factors `(A + γI)⁻¹` and `(G + γI)⁻¹`.
//! - [`SymPacked`]: upper-triangle packed storage with `d(d+1)/2` elements —
//!   the wire format of §V-B ("we only need to send their upper triangle
//!   elements").
//! - [`kron`](mod@kron): the Kronecker identity `(A ⊗ G) vec(X) = G X Aᵀ` used to
//!   precondition gradients without materialising `A ⊗ G` (Eq. 11).
//! - [`rng`]: deterministic random matrix/vector generators used throughout
//!   the test suites and synthetic workloads.
//!
//! # Example
//!
//! ```
//! use spdkfac_tensor::{Matrix, chol::spd_inverse};
//!
//! # fn main() -> Result<(), spdkfac_tensor::TensorError> {
//! // Build an SPD matrix A = XᵀX + I and invert it.
//! let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
//! let mut a = x.gramian();
//! a.add_scaled_identity(1.0);
//! let a_inv = spd_inverse(&a)?;
//! let prod = a.matmul(&a_inv);
//! assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod chol;
pub mod eig;
pub mod error;
pub mod gemm;
pub mod kron;
pub mod matrix;
pub mod pool;
pub mod rng;
pub mod sym;

pub use chol::{cholesky, spd_inverse, Cholesky};
pub use error::TensorError;
pub use gemm::{reference_kernels, set_reference_kernels};
pub use kron::{kron, precondition_gradient};
pub use matrix::Matrix;
pub use sym::SymPacked;
