//! Packed upper-triangle storage for symmetric matrices.
//!
//! The Kronecker factors `A` and `G` (and their inverses) are symmetric, so
//! the paper only ever communicates the `d(d+1)/2` upper-triangle elements
//! (§III-A counts factor traffic this way; §V-B broadcasts inverses this
//! way). [`SymPacked`] is that wire format: a flat buffer that all-reduce and
//! broadcast operate on directly.

use crate::matrix::Matrix;

/// A symmetric `d × d` matrix stored as its packed upper triangle
/// (row-major: `(0,0), (0,1), …, (0,d-1), (1,1), …`).
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, SymPacked};
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
/// let p = SymPacked::from_matrix(&m);
/// assert_eq!(p.len(), 3); // d(d+1)/2
/// assert_eq!(p.to_matrix(), m);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SymPacked {
    dim: usize,
    data: Vec<f64>,
}

/// Number of packed elements for a symmetric `d × d` matrix: `d(d+1)/2`.
///
/// This is the element count the paper uses for every communication-volume
/// estimate (Eq. 15 context, Eq. 27, Table II).
pub const fn packed_len(d: usize) -> usize {
    d * (d + 1) / 2
}

impl SymPacked {
    /// Creates a zero-filled packed matrix of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SymPacked {
            dim,
            data: vec![0.0; packed_len(dim)],
        }
    }

    /// Packs the upper triangle of a square matrix.
    ///
    /// Only the upper triangle (including the diagonal) of `m` is read; any
    /// asymmetry in the lower triangle is discarded.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square.
    pub fn from_matrix(m: &Matrix) -> Self {
        assert!(m.is_square(), "SymPacked::from_matrix requires square");
        let d = m.rows();
        let mut data = Vec::with_capacity(packed_len(d));
        for i in 0..d {
            for j in i..d {
                data.push(m[(i, j)]);
            }
        }
        SymPacked { dim: d, data }
    }

    /// Wraps an existing packed buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dim*(dim+1)/2`.
    pub fn from_vec(dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            packed_len(dim),
            "SymPacked::from_vec: buffer length mismatch for dim {dim}"
        );
        SymPacked { dim, data }
    }

    /// Matrix dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of packed elements, `d(d+1)/2`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when `dim == 0`.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the packed buffer (the bytes that go on the wire).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the packed buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes self and returns the packed buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Flat index of element `(i, j)` with `i ≤ j`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if indices are out of range. Callers may pass `(j, i)`
    /// with `j > i`; the symmetric element is resolved automatically.
    #[inline]
    fn flat(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        debug_assert!(j < self.dim, "SymPacked index out of bounds");
        // Row i starts after rows 0..i, which hold (d) + (d-1) + … + (d-i+1)
        // elements = i*d - i(i-1)/2.
        i * self.dim - i * (i.saturating_sub(1)) / 2 + (j - i)
    }

    /// Element accessor honouring symmetry.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.flat(i, j)]
    }

    /// Element setter honouring symmetry.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.flat(i, j);
        self.data[idx] = v;
    }

    /// Expands back to a full dense symmetric matrix.
    pub fn to_matrix(&self) -> Matrix {
        let d = self.dim;
        Matrix::from_fn(d, d, |i, j| self.get(i, j))
    }

    /// `self += alpha * other`, element-wise on the packed buffers (what a
    /// reduce does on the wire).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &SymPacked) {
        assert_eq!(self.dim, other.dim, "SymPacked::axpy: dim mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scales all packed elements.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Averages a non-empty set of packed matrices — the semantics of the
    /// factor all-reduce in Eq. 13 (`(1/P) Σ_p A^p`).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or dimensions disagree.
    pub fn average(parts: &[SymPacked]) -> SymPacked {
        assert!(!parts.is_empty(), "SymPacked::average: empty input");
        let mut acc = parts[0].clone();
        for p in &parts[1..] {
            acc.axpy(1.0, p);
        }
        acc.scale(1.0 / parts.len() as f64);
        acc
    }
}

impl From<&Matrix> for SymPacked {
    fn from(m: &Matrix) -> Self {
        SymPacked::from_matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;

    fn random_sym(d: usize, seed: u64) -> Matrix {
        let mut rng = MatrixRng::new(seed);
        let x = rng.gaussian_matrix(d + 2, d);
        x.gramian()
    }

    #[test]
    fn packed_len_formula() {
        assert_eq!(packed_len(0), 0);
        assert_eq!(packed_len(1), 1);
        assert_eq!(packed_len(64), 2080); // Fig. 3 smallest ResNet-50 factor
        assert_eq!(packed_len(4608), 10_619_136); // Fig. 3 largest
    }

    #[test]
    fn roundtrip_matrix() {
        for d in [1, 2, 3, 9, 24] {
            let m = random_sym(d, d as u64);
            let p = SymPacked::from_matrix(&m);
            assert_eq!(p.len(), packed_len(d));
            assert!(p.to_matrix().max_abs_diff(&m) < 1e-15);
        }
    }

    #[test]
    fn get_honours_symmetry() {
        let m = random_sym(5, 77);
        let p = SymPacked::from_matrix(&m);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(p.get(i, j), p.get(j, i));
                assert_eq!(p.get(i, j), m[(i, j)]);
            }
        }
    }

    #[test]
    fn set_updates_both_orientations() {
        let mut p = SymPacked::zeros(4);
        p.set(3, 1, 2.5);
        assert_eq!(p.get(1, 3), 2.5);
        assert_eq!(p.get(3, 1), 2.5);
    }

    #[test]
    fn average_matches_dense_average() {
        let parts: Vec<SymPacked> = (0..4)
            .map(|s| SymPacked::from_matrix(&random_sym(6, 200 + s)))
            .collect();
        let avg = SymPacked::average(&parts);
        let mut dense = Matrix::zeros(6, 6);
        for p in &parts {
            dense.axpy(0.25, &p.to_matrix());
        }
        assert!(avg.to_matrix().max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let a = SymPacked::from_matrix(&Matrix::identity(3));
        let mut b = SymPacked::zeros(3);
        b.axpy(2.0, &a);
        b.scale(0.5);
        assert!(b.to_matrix().max_abs_diff(&Matrix::identity(3)) < 1e-15);
    }

    #[test]
    fn zero_dim_is_empty() {
        let p = SymPacked::zeros(0);
        assert!(p.is_empty());
        assert_eq!(p.to_matrix().shape(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_validates_length() {
        let _ = SymPacked::from_vec(3, vec![0.0; 5]);
    }
}
