//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Needed by the EKFAC extension (`spdkfac-core::ekfac`): K-FAC's
//! eigenvalue-corrected variant preconditions in the Kronecker *eigenbasis*
//! of the factors instead of multiplying by their inverses.

use crate::error::TensorError;
use crate::matrix::Matrix;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns (same order as `values`).
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix with cyclic Jacobi
/// rotations.
///
/// Only the symmetric part of `a` is used (`(a + aᵀ)/2` implicitly, by
/// reading both triangles through averaged rotations; callers should pass
/// numerically symmetric matrices).
///
/// # Errors
///
/// Returns [`TensorError::NotSquare`] for rectangular input.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, eig::sym_eig};
///
/// # fn main() -> Result<(), spdkfac_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = sym_eig(&a)?;
/// assert!((e.values[0] - 1.0).abs() < 1e-10);
/// assert!((e.values[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn sym_eig(a: &Matrix) -> Result<SymEig, TensorError> {
    if !a.is_square() {
        return Err(TensorError::NotSquare {
            op: "sym_eig",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;
    let tol = 1e-14 * m.frobenius_norm().max(1e-300);
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Jacobi rotation angle.
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p, q of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort ascending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);
    Ok(SymEig { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;

    fn check_decomposition(a: &Matrix, e: &SymEig, tol: f64) {
        let n = a.rows();
        // Orthonormality.
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(
            vtv.max_abs_diff(&Matrix::identity(n)) < tol,
            "V not orthonormal"
        );
        // Reconstruction.
        let lam = Matrix::from_diag(&e.values);
        let rebuilt = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(rebuilt.max_abs_diff(a) < tol, "reconstruction failed");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.values, vec![1.0, 2.0, 3.0]);
        check_decomposition(&a, &e, 1e-12);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_spd_matrices() {
        let mut rng = MatrixRng::new(5);
        for n in [1usize, 2, 5, 12, 30] {
            let a = rng.spd_matrix(n, 0.1);
            let e = sym_eig(&a).unwrap();
            check_decomposition(&a, &e, 1e-9);
            assert!(
                e.values.iter().all(|&l| l > 0.0),
                "SPD eigenvalues positive"
            );
            // Ascending order.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn indefinite_symmetric_matrix() {
        let mut rng = MatrixRng::new(9);
        let x = rng.gaussian_matrix(6, 6);
        let mut a = &x + &x.transpose();
        a.scale(0.5);
        let e = sym_eig(&a).unwrap();
        check_decomposition(&a, &e, 1e-9);
    }

    #[test]
    fn eigenvalues_match_trace_and_det() {
        let mut rng = MatrixRng::new(11);
        let a = rng.spd_matrix(5, 0.2);
        let e = sym_eig(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
        let prod: f64 = e.values.iter().product();
        let logdet = crate::chol::cholesky(&a).unwrap().log_det();
        assert!((prod.ln() - logdet).abs() < 1e-8);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(sym_eig(&Matrix::zeros(2, 3)).is_err());
    }
}
