//! Kronecker-product identities used by K-FAC preconditioning.
//!
//! K-FAC never materialises `F̂_l = A_{l-1} ⊗ G_l` (Eq. 9): the preconditioned
//! gradient of Eq. 11 is computed with the identity
//! `(A⁻¹ ⊗ G⁻¹) vec(∇W) = G⁻¹ · ∇W · A⁻¹` where `∇W` is the `d_out × d_in`
//! gradient matrix. The explicit [`kron`] is provided for testing that
//! identity on small matrices.

use crate::matrix::Matrix;

/// Explicit Kronecker product `a ⊗ b`.
///
/// Intended for tests and tiny matrices — the output has
/// `a.rows()·b.rows() × a.cols()·b.cols()` elements.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, kron::kron};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let b = Matrix::identity(2);
/// let k = kron(&a, &b);
/// assert_eq!(k.shape(), (2, 4));
/// assert_eq!(k[(0, 0)], 1.0);
/// assert_eq!(k[(0, 2)], 2.0);
/// ```
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    Matrix::from_fn(ar * br, ac * bc, |i, j| {
        a[(i / br, j / bc)] * b[(i % br, j % bc)]
    })
}

/// Column-major vectorisation `vec(M)` (stacks columns), matching the
/// convention under which `(A ⊗ B) vec(X) = vec(B X Aᵀ)`.
pub fn vec_col_major(m: &Matrix) -> Vec<f64> {
    let (r, c) = m.shape();
    let mut v = Vec::with_capacity(r * c);
    for j in 0..c {
        for i in 0..r {
            v.push(m[(i, j)]);
        }
    }
    v
}

/// Inverse of [`vec_col_major`]: reshapes a column-stacked vector into an
/// `rows × cols` matrix.
///
/// # Panics
///
/// Panics if `v.len() != rows * cols`.
pub fn unvec_col_major(v: &[f64], rows: usize, cols: usize) -> Matrix {
    assert_eq!(v.len(), rows * cols, "unvec: length mismatch");
    Matrix::from_fn(rows, cols, |i, j| v[j * rows + i])
}

/// Preconditions a layer gradient with the inverse Kronecker factors
/// (Eq. 11): returns `G⁻¹ · ∇W · A⁻¹`.
///
/// `grad` has shape `d_out × d_in`; `a_inv` is `d_in × d_in` (symmetric);
/// `g_inv` is `d_out × d_out` (symmetric). Because both inverses are
/// symmetric, `∇W · A⁻¹ = ∇W · A⁻ᵀ`, so no transpose is needed.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, kron::precondition_gradient};
///
/// let grad = Matrix::from_rows(&[&[2.0, 4.0]]);
/// let a_inv = Matrix::from_diag(&[0.5, 0.25]);
/// let g_inv = Matrix::from_diag(&[0.5]);
/// let p = precondition_gradient(&grad, &a_inv, &g_inv);
/// assert_eq!(p[(0, 0)], 0.5);
/// assert_eq!(p[(0, 1)], 0.5);
/// ```
pub fn precondition_gradient(grad: &Matrix, a_inv: &Matrix, g_inv: &Matrix) -> Matrix {
    assert_eq!(
        grad.cols(),
        a_inv.rows(),
        "precondition: grad cols {} vs A⁻¹ dim {}",
        grad.cols(),
        a_inv.rows()
    );
    assert_eq!(
        grad.rows(),
        g_inv.rows(),
        "precondition: grad rows {} vs G⁻¹ dim {}",
        grad.rows(),
        g_inv.rows()
    );
    g_inv.matmul(grad).matmul(a_inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;

    #[test]
    fn kron_identity_dims() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        let k = kron(&a, &b);
        assert!(k.max_abs_diff(&Matrix::identity(6)) < 1e-15);
    }

    #[test]
    fn kron_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]);
        let k = kron(&a, &b);
        // Top-left block = 1 * b.
        assert_eq!(k[(0, 1)], 5.0);
        assert_eq!(k[(1, 0)], 6.0);
        // Top-right block = 2 * b.
        assert_eq!(k[(0, 3)], 10.0);
        assert_eq!(k[(1, 2)], 12.0);
        // Bottom-right block = 4 * b.
        assert_eq!(k[(3, 3)], 28.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD).
        let mut rng = MatrixRng::new(4);
        let a = rng.uniform_matrix(2, 3, -1.0, 1.0);
        let b = rng.uniform_matrix(3, 2, -1.0, 1.0);
        let c = rng.uniform_matrix(3, 2, -1.0, 1.0);
        let d = rng.uniform_matrix(2, 4, -1.0, 1.0);
        let lhs = kron(&a, &b).matmul(&kron(&c, &d));
        let rhs = kron(&a.matmul(&c), &b.matmul(&d));
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn vec_unvec_roundtrip() {
        let mut rng = MatrixRng::new(5);
        let m = rng.uniform_matrix(3, 4, -1.0, 1.0);
        let v = vec_col_major(&m);
        assert_eq!(v.len(), 12);
        let back = unvec_col_major(&v, 3, 4);
        assert_eq!(back, m);
    }

    #[test]
    fn precondition_matches_explicit_kron() {
        // Verify (A⁻¹ ⊗ G⁻¹) vec(∇) == vec(G⁻¹ ∇ A⁻¹) for symmetric inverses.
        // Under column-major vec of the d_out×d_in grad matrix X:
        // vec(G X A) = (Aᵀ ⊗ G) vec(X) = (A ⊗ G) vec(X) for symmetric A.
        let mut rng = MatrixRng::new(6);
        let sa = rng.gaussian_matrix(5, 3).gramian().damped(0.3);
        let sg = rng.gaussian_matrix(6, 4).gramian().damped(0.3);
        let a_inv = crate::chol::spd_inverse(&sa).unwrap();
        let g_inv = crate::chol::spd_inverse(&sg).unwrap();
        let grad = rng.uniform_matrix(4, 3, -1.0, 1.0); // d_out=4, d_in=3

        let fast = precondition_gradient(&grad, &a_inv, &g_inv);

        let big = kron(&a_inv, &g_inv); // (A⁻¹ ⊗ G⁻¹), 12x12
        let v = vec_col_major(&grad);
        let pre = big.matvec(&v);
        let explicit = unvec_col_major(&pre, 4, 3);
        assert!(fast.max_abs_diff(&explicit) < 1e-10);
    }

    #[test]
    fn precondition_with_identity_is_noop() {
        let mut rng = MatrixRng::new(7);
        let grad = rng.uniform_matrix(3, 5, -1.0, 1.0);
        let p = precondition_gradient(&grad, &Matrix::identity(5), &Matrix::identity(3));
        assert!(p.max_abs_diff(&grad) < 1e-15);
    }
}
