//! Cholesky factorization and SPD inversion.
//!
//! The paper inverts every damped Kronecker factor `(A + γI)` and `(G + γI)`
//! with cuSolver's Cholesky path (§V-B). This module is the CPU analogue:
//! `LLᵀ` factorization ([`cholesky`]), triangular solves, and a full SPD
//! inverse ([`spd_inverse`]) via inversion of the triangular factor
//! (the POTRF + POTRI sequence).
//!
//! Matrices larger than one block use a blocked right-looking factorization:
//! the diagonal block is factored unblocked, then the panel solve and the
//! trailing-matrix rank-`nb` update are distributed row-wise over the
//! persistent pool ([`crate::pool`]). Each row of the output is produced by
//! exactly one task in serial loop order, so the result is bit-identical for
//! any `SPDKFAC_THREADS` setting. The pre-pool unblocked kernels remain as
//! the small-matrix path and as the serial reference selected by
//! [`crate::gemm::set_reference_kernels`].

use crate::error::TensorError;
use crate::gemm;
use crate::matrix::Matrix;
use crate::pool::{self, SharedSlice};

/// Default block edge for the blocked factorization/inverse; matrices up to
/// this size use the unblocked kernels.
const CHOL_NB: usize = 64;

/// Minimum panel/trailing elements before a parallel dispatch is worth it.
const CHOL_PAR_ELEMS: usize = 16 * 1024;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Produced by [`cholesky`]; provides solves and the SPD inverse.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

/// Computes the Cholesky factorization `A = L Lᵀ` of a symmetric positive
/// definite matrix.
///
/// Only the lower triangle of `a` is read, so numerically-slightly-asymmetric
/// inputs are accepted (the upper triangle is ignored).
///
/// # Errors
///
/// - [`TensorError::NotSquare`] if `a` is rectangular.
/// - [`TensorError::NotPositiveDefinite`] if a non-positive pivot appears.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, chol::cholesky};
///
/// # fn main() -> Result<(), spdkfac_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = cholesky(&a)?;
/// let rebuilt = ch.factor().matmul(&ch.factor().transpose());
/// assert!(rebuilt.max_abs_diff(&a) < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Matrix) -> Result<Cholesky, TensorError> {
    if gemm::reference_kernels() {
        return cholesky_unblocked(a);
    }
    cholesky_with_block(a, CHOL_NB)
}

/// The seed factorization: serial unblocked column-by-column `LLᵀ`.
///
/// Kept as the small-matrix path of [`cholesky`], the serial reference for
/// `bench_kernels`, and the parity baseline for the proptests.
///
/// # Errors
///
/// Same contract as [`cholesky`].
pub fn cholesky_unblocked(a: &Matrix) -> Result<Cholesky, TensorError> {
    if !a.is_square() {
        return Err(TensorError::NotSquare {
            op: "cholesky",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(TensorError::NotPositiveDefinite { pivot: j });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(Cholesky { l })
}

/// Blocked right-looking Cholesky with an explicit block edge `nb`.
///
/// Exposed (rather than hard-wiring [`cholesky`]'s default) so tests can
/// force the blocked code path on small matrices. Matrices with
/// `n <= nb` fall back to [`cholesky_unblocked`].
///
/// # Errors
///
/// Same contract as [`cholesky`].
///
/// # Panics
///
/// Panics if `nb == 0`.
pub fn cholesky_with_block(a: &Matrix, nb: usize) -> Result<Cholesky, TensorError> {
    assert!(nb >= 1, "cholesky_with_block: block edge must be positive");
    if !a.is_square() {
        return Err(TensorError::NotSquare {
            op: "cholesky",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n <= nb {
        return cholesky_unblocked(a);
    }
    // Working copy of the lower triangle (the upper triangle is ignored,
    // matching the unblocked kernel's read pattern).
    let mut w = vec![0.0; n * n];
    let src = a.as_slice();
    for i in 0..n {
        w[i * n..i * n + i + 1].copy_from_slice(&src[i * n..i * n + i + 1]);
    }
    for j0 in (0..n).step_by(nb) {
        let j1 = (j0 + nb).min(n);
        let bw = j1 - j0;
        // Factor the diagonal block in place (unblocked; its columns only
        // depend on columns within the block after prior trailing updates).
        for j in j0..j1 {
            let mut d = w[j * n + j];
            for k in j0..j {
                d -= w[j * n + k] * w[j * n + k];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(TensorError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            w[j * n + j] = dj;
            for i in (j + 1)..j1 {
                let mut s = w[i * n + j];
                for k in j0..j {
                    s -= w[i * n + k] * w[j * n + k];
                }
                w[i * n + j] = s / dj;
            }
        }
        if j1 == n {
            break;
        }
        // Snapshot the factored diagonal block: panel tasks read it while
        // holding mutable windows onto their own (disjoint) row ranges.
        let mut l11 = vec![0.0; bw * bw];
        for (r, row) in l11.chunks_mut(bw).enumerate() {
            row.copy_from_slice(&w[(j0 + r) * n + j0..(j0 + r) * n + j1]);
        }
        let rows_below = n - j1;
        let tasks = rows_below.div_ceil(CHOL_NB);
        let parallel = pool::is_parallel() && tasks > 1 && rows_below * bw >= CHOL_PAR_ELEMS;
        // Panel solve: L21 · L11ᵀ = A21, row by row (each row independent).
        {
            let shared = SharedSlice::new(&mut w);
            let body = |t: usize| {
                let r0 = j1 + t * CHOL_NB;
                let r1 = (r0 + CHOL_NB).min(n);
                // SAFETY: task t owns rows [r0, r1) exclusively.
                let rows = unsafe { shared.slice_mut(r0 * n..r1 * n) };
                for row in rows.chunks_mut(n) {
                    for j in j0..j1 {
                        let jb = j - j0;
                        let lrow = &l11[jb * bw..jb * bw + jb];
                        let mut s = row[j];
                        for (k, &lv) in lrow.iter().enumerate() {
                            s -= row[j0 + k] * lv;
                        }
                        row[j] = s / l11[jb * bw + jb];
                    }
                }
            };
            if parallel {
                pool::parallel_for(tasks, body);
            } else {
                for t in 0..tasks {
                    body(t);
                }
            }
        }
        // Snapshot the solved panel: the trailing update of row i reads the
        // panel rows of every j ≤ i, which other tasks own.
        let mut panel = vec![0.0; rows_below * bw];
        for (r, prow) in panel.chunks_mut(bw).enumerate() {
            prow.copy_from_slice(&w[(j1 + r) * n + j0..(j1 + r) * n + j1]);
        }
        // Trailing update: A22 -= L21 · L21ᵀ (lower triangle only).
        {
            let shared = SharedSlice::new(&mut w);
            let body = |t: usize| {
                let r0 = j1 + t * CHOL_NB;
                let r1 = (r0 + CHOL_NB).min(n);
                // SAFETY: task t owns rows [r0, r1) exclusively; reads go to
                // the immutable `panel` snapshot.
                let rows = unsafe { shared.slice_mut(r0 * n..r1 * n) };
                for (ri, row) in rows.chunks_mut(n).enumerate() {
                    let i = r0 + ri;
                    let pi = &panel[(i - j1) * bw..(i - j1 + 1) * bw];
                    for j in j1..=i {
                        let pj = &panel[(j - j1) * bw..(j - j1 + 1) * bw];
                        row[j] -= gemm::dot(pi, pj);
                    }
                }
            };
            if parallel {
                pool::parallel_for(tasks, body);
            } else {
                for t in 0..tasks {
                    body(t);
                }
            }
        }
    }
    Ok(Cholesky {
        l: Matrix::from_vec(n, n, w),
    })
}

impl Cholesky {
    /// Borrow the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` using the factorization (forward then backward
    /// substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Panics
    ///
    /// Panics if `B.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_matrix: shape mismatch");
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for r in 0..n {
                col[r] = b[(r, c)];
            }
            let x = self.solve(&col);
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        out
    }

    /// Computes the full inverse `A⁻¹ = L⁻ᵀ L⁻¹` (POTRI-style).
    ///
    /// The result is exactly symmetric by construction. Dimensions above one
    /// block dispatch to [`Cholesky::inverse_with_block`].
    pub fn inverse(&self) -> Matrix {
        if gemm::reference_kernels() || self.dim() <= CHOL_NB {
            return self.inverse_unblocked();
        }
        self.inverse_with_block(CHOL_NB)
    }

    /// The seed inverse: serial scalar triangular inversion followed by the
    /// scalar `MᵀM` product. Kept as the small-matrix path of
    /// [`Cholesky::inverse`], the serial reference for `bench_kernels`, and
    /// the parity baseline for the proptests.
    pub fn inverse_unblocked(&self) -> Matrix {
        let n = self.dim();
        // Invert the lower-triangular factor: M = L⁻¹ (lower triangular).
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0 / self.l[(i, i)];
            for j in 0..i {
                let mut s = 0.0;
                for k in j..i {
                    s += self.l[(i, k)] * m[(k, j)];
                }
                m[(i, j)] = -s / self.l[(i, i)];
            }
        }
        // A⁻¹ = Mᵀ M, computed on the upper triangle then mirrored.
        let mut inv = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                // Column i of M dotted with column j of M, rows ≥ max(i, j)=j.
                let mut s = 0.0;
                for k in j..n {
                    s += m[(k, i)] * m[(k, j)];
                }
                inv[(i, j)] = s;
                inv[(j, i)] = s;
            }
        }
        inv
    }

    /// Pool-parallel inverse with an explicit block edge `nb`.
    ///
    /// Exposed so tests can force the blocked code path on small matrices.
    /// Each column of `M = L⁻¹` is an independent forward substitution
    /// (columns are distributed over the pool in `nb`-wide chunks), and the
    /// symmetric product `A⁻¹ = MᵀM` is computed over upper-triangle blocks
    /// exploiting the triangular sparsity of `M`.
    ///
    /// # Panics
    ///
    /// Panics if `nb == 0`.
    pub fn inverse_with_block(&self, nb: usize) -> Matrix {
        assert!(nb >= 1, "inverse_with_block: block edge must be positive");
        let n = self.dim();
        let l = self.l.as_slice();
        // `mt` holds Mᵀ row-major: row j of `mt` is column j of M = L⁻¹,
        // contiguous for the forward substitution and the dots below.
        let mut mt = vec![0.0; n * n];
        {
            let shared = SharedSlice::new(&mut mt);
            let tasks = n.div_ceil(nb);
            let parallel = pool::is_parallel() && tasks > 1 && n * n >= CHOL_PAR_ELEMS;
            let body = |t: usize| {
                let c0 = t * nb;
                let c1 = (c0 + nb).min(n);
                // SAFETY: task t owns columns [c0, c1) = `mt` rows [c0, c1).
                let cols = unsafe { shared.slice_mut(c0 * n..c1 * n) };
                for (ci, y) in cols.chunks_mut(n).enumerate() {
                    let j = c0 + ci;
                    // Forward substitution L y = e_j; y is zero above row j.
                    y[j] = 1.0 / l[j * n + j];
                    for i in (j + 1)..n {
                        let s = gemm::dot(&l[i * n + j..i * n + i], &y[j..i]);
                        y[i] = -s / l[i * n + i];
                    }
                }
            };
            if parallel {
                pool::parallel_for(tasks, body);
            } else {
                for t in 0..tasks {
                    body(t);
                }
            }
        }
        // A⁻¹(i, j) = Σ_k M(k, i) M(k, j); both columns are zero above
        // max(i, j), so for i ≤ j the dot starts at k = j.
        let mut inv = vec![0.0; n * n];
        {
            let shared = SharedSlice::new(&mut inv);
            let blocks = n.div_ceil(nb);
            let pairs: Vec<(usize, usize)> = (0..blocks)
                .flat_map(|bi| (bi..blocks).map(move |bj| (bi, bj)))
                .collect();
            let parallel = pool::is_parallel() && pairs.len() > 1 && n * n >= CHOL_PAR_ELEMS;
            let body = |t: usize| {
                let (bi, bj) = pairs[t];
                let i0 = bi * nb;
                let i1 = (i0 + nb).min(n);
                let j0 = bj * nb;
                let j1 = (j0 + nb).min(n);
                // SAFETY: upper-triangle block (bi, bj) is owned by this task.
                let c = unsafe { shared.slice_mut(0..n * n) };
                for i in i0..i1 {
                    for j in j0.max(i)..j1 {
                        c[i * n + j] =
                            gemm::dot(&mt[i * n + j..(i + 1) * n], &mt[j * n + j..(j + 1) * n]);
                    }
                }
            };
            if parallel {
                pool::parallel_for(pairs.len(), body);
            } else {
                for t in 0..pairs.len() {
                    body(t);
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in (i + 1)..n {
                inv[j * n + i] = inv[i * n + j];
            }
        }
        Matrix::from_vec(n, n, inv)
    }

    /// Log-determinant of `A`: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Convenience wrapper: factorizes and inverts an SPD matrix in one call.
///
/// This is the operation the paper's load-balancing placement distributes
/// across GPUs (`f(T_i)` in §IV-B).
///
/// # Errors
///
/// Propagates [`cholesky`] errors.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, chol::spd_inverse};
///
/// # fn main() -> Result<(), spdkfac_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let inv = spd_inverse(&a)?;
/// assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(2)) < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, TensorError> {
    Ok(cholesky(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = MatrixRng::new(seed);
        let x = rng.gaussian_matrix(n + 4, n);
        let mut a = x.gramian_scaled(n as f64);
        a.add_scaled_identity(0.5);
        a
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1, 2, 3, 8, 17, 40] {
            let a = random_spd(n, n as u64);
            let ch = cholesky(&a).unwrap();
            let rebuilt = ch.factor().matmul(&ch.factor().transpose());
            assert!(
                rebuilt.max_abs_diff(&a) < 1e-10,
                "reconstruction failed at n={n}"
            );
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = random_spd(6, 42);
        let ch = cholesky(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(ch.factor()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky(&a),
            Err(TensorError::NotSquare { op: "cholesky", .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(TensorError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_negative_diagonal_immediately() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(TensorError::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn solve_matches_direct() {
        let a = random_spd(12, 3);
        let ch = cholesky(&a).unwrap();
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = random_spd(7, 8);
        let ch = cholesky(&a).unwrap();
        let mut rng = MatrixRng::new(9);
        let b = rng.uniform_matrix(7, 3, -1.0, 1.0);
        let x = ch.solve_matrix(&b);
        let ax = a.matmul(&x);
        assert!(ax.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn inverse_is_symmetric_and_correct() {
        for n in [1, 2, 5, 16, 33] {
            let a = random_spd(n, 100 + n as u64);
            let inv = spd_inverse(&a).unwrap();
            assert_eq!(inv.max_asymmetry(), 0.0, "asymmetric inverse at n={n}");
            let prod = a.matmul(&inv);
            assert!(
                prod.max_abs_diff(&Matrix::identity(n)) < 1e-8,
                "A·A⁻¹ ≠ I at n={n}"
            );
        }
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = Matrix::identity(5);
        let inv = spd_inverse(&i).unwrap();
        assert!(inv.max_abs_diff(&i) < 1e-14);
    }

    #[test]
    fn inverse_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 4.0, 8.0]);
        let inv = spd_inverse(&a).unwrap();
        let expect = Matrix::from_diag(&[0.5, 0.25, 0.125]);
        assert!(inv.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn log_det_matches_diagonal_case() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = cholesky(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn blocked_factorization_matches_unblocked() {
        for n in [5usize, 16, 33, 65, 130] {
            let a = random_spd(n, 500 + n as u64);
            let unblocked = cholesky_unblocked(&a).unwrap();
            // Small nb forces the blocked path even on tiny matrices.
            for nb in [2usize, 7, 16] {
                let blocked = cholesky_with_block(&a, nb).unwrap();
                assert!(
                    blocked.factor().max_abs_diff(unblocked.factor()) < 1e-10,
                    "blocked nb={nb} diverges at n={n}"
                );
            }
        }
    }

    #[test]
    fn blocked_inverse_matches_unblocked() {
        for n in [5usize, 16, 33, 65] {
            let a = random_spd(n, 900 + n as u64);
            let ch = cholesky(&a).unwrap();
            let reference = ch.inverse_unblocked();
            for nb in [2usize, 7, 16] {
                let blocked = ch.inverse_with_block(nb);
                assert!(
                    blocked.max_abs_diff(&reference) < 1e-10,
                    "blocked inverse nb={nb} diverges at n={n}"
                );
                assert_eq!(blocked.max_asymmetry(), 0.0);
            }
        }
    }

    #[test]
    fn blocked_factorization_reports_global_pivot() {
        // Indefinite beyond the first block: pivot index must be global.
        let mut a = random_spd(9, 77);
        a[(7, 7)] = -100.0;
        match cholesky_with_block(&a, 4) {
            Err(TensorError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 7),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn damping_rescues_singular_matrix() {
        // Rank-1 Gramian is singular; damping per Eq. 12 makes it invertible.
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let a = x.gramian();
        assert!(cholesky(&a).is_err());
        let damped = a.damped(1e-3);
        assert!(spd_inverse(&damped).is_ok());
    }
}
