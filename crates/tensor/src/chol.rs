//! Cholesky factorization and SPD inversion.
//!
//! The paper inverts every damped Kronecker factor `(A + γI)` and `(G + γI)`
//! with cuSolver's Cholesky path (§V-B). This module is the CPU analogue:
//! `LLᵀ` factorization ([`cholesky`]), triangular solves, and a full SPD
//! inverse ([`spd_inverse`]) via inversion of the triangular factor
//! (the POTRF + POTRI sequence).

use crate::error::TensorError;
use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Produced by [`cholesky`]; provides solves and the SPD inverse.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

/// Computes the Cholesky factorization `A = L Lᵀ` of a symmetric positive
/// definite matrix.
///
/// Only the lower triangle of `a` is read, so numerically-slightly-asymmetric
/// inputs are accepted (the upper triangle is ignored).
///
/// # Errors
///
/// - [`TensorError::NotSquare`] if `a` is rectangular.
/// - [`TensorError::NotPositiveDefinite`] if a non-positive pivot appears.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, chol::cholesky};
///
/// # fn main() -> Result<(), spdkfac_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = cholesky(&a)?;
/// let rebuilt = ch.factor().matmul(&ch.factor().transpose());
/// assert!(rebuilt.max_abs_diff(&a) < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Matrix) -> Result<Cholesky, TensorError> {
    if !a.is_square() {
        return Err(TensorError::NotSquare {
            op: "cholesky",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(TensorError::NotPositiveDefinite { pivot: j });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(Cholesky { l })
}

impl Cholesky {
    /// Borrow the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` using the factorization (forward then backward
    /// substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Panics
    ///
    /// Panics if `B.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_matrix: shape mismatch");
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for c in 0..b.cols() {
            for r in 0..n {
                col[r] = b[(r, c)];
            }
            let x = self.solve(&col);
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        out
    }

    /// Computes the full inverse `A⁻¹ = L⁻ᵀ L⁻¹` (POTRI-style).
    ///
    /// The result is exactly symmetric by construction.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        // Invert the lower-triangular factor: M = L⁻¹ (lower triangular).
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0 / self.l[(i, i)];
            for j in 0..i {
                let mut s = 0.0;
                for k in j..i {
                    s += self.l[(i, k)] * m[(k, j)];
                }
                m[(i, j)] = -s / self.l[(i, i)];
            }
        }
        // A⁻¹ = Mᵀ M, computed on the upper triangle then mirrored.
        let mut inv = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                // Column i of M dotted with column j of M, rows ≥ max(i, j)=j.
                let mut s = 0.0;
                for k in j..n {
                    s += m[(k, i)] * m[(k, j)];
                }
                inv[(i, j)] = s;
                inv[(j, i)] = s;
            }
        }
        inv
    }

    /// Log-determinant of `A`: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Convenience wrapper: factorizes and inverts an SPD matrix in one call.
///
/// This is the operation the paper's load-balancing placement distributes
/// across GPUs (`f(T_i)` in §IV-B).
///
/// # Errors
///
/// Propagates [`cholesky`] errors.
///
/// # Example
///
/// ```
/// use spdkfac_tensor::{Matrix, chol::spd_inverse};
///
/// # fn main() -> Result<(), spdkfac_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let inv = spd_inverse(&a)?;
/// assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(2)) < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, TensorError> {
    Ok(cholesky(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MatrixRng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = MatrixRng::new(seed);
        let x = rng.gaussian_matrix(n + 4, n);
        let mut a = x.gramian_scaled(n as f64);
        a.add_scaled_identity(0.5);
        a
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1, 2, 3, 8, 17, 40] {
            let a = random_spd(n, n as u64);
            let ch = cholesky(&a).unwrap();
            let rebuilt = ch.factor().matmul(&ch.factor().transpose());
            assert!(
                rebuilt.max_abs_diff(&a) < 1e-10,
                "reconstruction failed at n={n}"
            );
        }
    }

    #[test]
    fn factor_is_lower_triangular() {
        let a = random_spd(6, 42);
        let ch = cholesky(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(ch.factor()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky(&a),
            Err(TensorError::NotSquare { op: "cholesky", .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(TensorError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_negative_diagonal_immediately() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(TensorError::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn solve_matches_direct() {
        let a = random_spd(12, 3);
        let ch = cholesky(&a).unwrap();
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = random_spd(7, 8);
        let ch = cholesky(&a).unwrap();
        let mut rng = MatrixRng::new(9);
        let b = rng.uniform_matrix(7, 3, -1.0, 1.0);
        let x = ch.solve_matrix(&b);
        let ax = a.matmul(&x);
        assert!(ax.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn inverse_is_symmetric_and_correct() {
        for n in [1, 2, 5, 16, 33] {
            let a = random_spd(n, 100 + n as u64);
            let inv = spd_inverse(&a).unwrap();
            assert_eq!(inv.max_asymmetry(), 0.0, "asymmetric inverse at n={n}");
            let prod = a.matmul(&inv);
            assert!(
                prod.max_abs_diff(&Matrix::identity(n)) < 1e-8,
                "A·A⁻¹ ≠ I at n={n}"
            );
        }
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = Matrix::identity(5);
        let inv = spd_inverse(&i).unwrap();
        assert!(inv.max_abs_diff(&i) < 1e-14);
    }

    #[test]
    fn inverse_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 4.0, 8.0]);
        let inv = spd_inverse(&a).unwrap();
        let expect = Matrix::from_diag(&[0.5, 0.25, 0.125]);
        assert!(inv.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn log_det_matches_diagonal_case() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = cholesky(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn damping_rescues_singular_matrix() {
        // Rank-1 Gramian is singular; damping per Eq. 12 makes it invertible.
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let a = x.gramian();
        assert!(cholesky(&a).is_err());
        let damped = a.damped(1e-3);
        assert!(spd_inverse(&damped).is_ok());
    }
}
