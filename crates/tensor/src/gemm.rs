//! Packed, cache-blocked GEMM / SYRK kernels with pool dispatch.
//!
//! This is the compute substrate behind every hot `Matrix` operation:
//!
//! - [`gemm`]: `C += op(A) · op(B)` with a register-tiled `MR × NR`
//!   microkernel over panels packed once per cache block (the
//!   BLIS/GotoBLAS structure). Transposition is absorbed by the packing
//!   routines, so `AᵀB` / `ABᵀ` products never materialize a transpose.
//! - [`syrk_tn`] / [`syrk_nt`]: symmetric rank-k products `XᵀX` / `XXᵀ`
//!   computing only the upper triangle (half the FLOPs of the equivalent
//!   GEMM) and mirroring it — the kernel behind the Kronecker-factor
//!   statistics `E[aaᵀ]` / `E[ggᵀ]`. Large products run on the packed
//!   microkernel restricted to the diagonal-and-right panels of each row
//!   block; small ones use an unpacked block-pair loop.
//!
//! The inner loops (microkernel, dot, axpy) dispatch once at runtime to
//! AVX2+FMA versions when the CPU supports them; the portable fallbacks
//! compile on every architecture.
//!
//! Row blocks of the output are distributed over the persistent pool
//! ([`crate::pool`]); each output element is produced by exactly one task in
//! serial loop order, so results are bit-identical for any thread count.
//!
//! [`set_reference_kernels`] routes every entry point back to the pre-pool
//! serial kernels (the seed implementation). It exists so benchmarks and
//! parity tests can measure/verify optimized-vs-reference on the same build;
//! production code should never enable it.

use crate::pool::{self, SharedSlice};
use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime-dispatched AVX2+FMA inner loops. The crate is compiled for
/// baseline x86-64 (SSE2), so the hot loops here are duplicated behind
/// `#[target_feature]` and selected once at runtime; every other
/// architecture (and pre-AVX2 hardware) falls back to the portable
/// kernels below.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{MR, NR};
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// One-time CPUID probe for the AVX2+FMA fast path.
    pub fn available() -> bool {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// `MR × NR` rank-`kc` update on packed panels: 8 × 256-bit FMA
    /// accumulators (4 rows × 2 vectors of 4 doubles).
    ///
    /// # Safety
    /// Caller must have verified [`available`]; panels must hold at least
    /// `kc * MR` / `kc * NR` elements.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel(
        kc: usize,
        apanel: &[f64],
        bpanel: &[f64],
        acc: &mut [[f64; NR]; MR],
    ) {
        unsafe {
            let ap = apanel.as_ptr();
            let bp = bpanel.as_ptr();
            let mut c = [[_mm256_setzero_pd(); 2]; MR];
            for p in 0..kc {
                let b0 = _mm256_loadu_pd(bp.add(p * NR));
                let b1 = _mm256_loadu_pd(bp.add(p * NR + 4));
                for (r, cr) in c.iter_mut().enumerate() {
                    let a = _mm256_set1_pd(*ap.add(p * MR + r));
                    cr[0] = _mm256_fmadd_pd(a, b0, cr[0]);
                    cr[1] = _mm256_fmadd_pd(a, b1, cr[1]);
                }
            }
            for (dst, cr) in acc.iter_mut().zip(c.iter()) {
                _mm256_storeu_pd(dst.as_mut_ptr(), cr[0]);
                _mm256_storeu_pd(dst.as_mut_ptr().add(4), cr[1]);
            }
        }
    }

    /// FMA dot product with four independent vector accumulators.
    ///
    /// # Safety
    /// Caller must have verified [`available`]; `x.len() == y.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        unsafe {
            let n = x.len();
            let xp = x.as_ptr();
            let yp = y.as_ptr();
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            let chunks = n / 16;
            for c in 0..chunks {
                let i = c * 16;
                a0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), a0);
                a1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 4)),
                    _mm256_loadu_pd(yp.add(i + 4)),
                    a1,
                );
                a2 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 8)),
                    _mm256_loadu_pd(yp.add(i + 8)),
                    a2,
                );
                a3 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 12)),
                    _mm256_loadu_pd(yp.add(i + 12)),
                    a3,
                );
            }
            let mut acc = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
            let mut i = chunks * 16;
            while i + 4 <= n {
                acc = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc);
                i += 4;
            }
            let mut buf = [0.0f64; 4];
            _mm256_storeu_pd(buf.as_mut_ptr(), acc);
            let mut s = (buf[0] + buf[1]) + (buf[2] + buf[3]);
            while i < n {
                s += *xp.add(i) * *yp.add(i);
                i += 1;
            }
            s
        }
    }

    /// `y += alpha * x` with FMA.
    ///
    /// # Safety
    /// Caller must have verified [`available`]; `x.len() == y.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        unsafe {
            let n = x.len();
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i + 4 <= n {
                let yv = _mm256_loadu_pd(yp.add(i));
                let xv = _mm256_loadu_pd(xp.add(i));
                _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(a, xv, yv));
                i += 4;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i);
                i += 1;
            }
        }
    }
}

/// Microkernel tile height (rows of C per register tile).
const MR: usize = 4;
/// Microkernel tile width (cols of C per register tile).
const NR: usize = 8;
/// Rows of `op(A)` packed per task block; multiple of `MR`.
const MC: usize = 64;
/// Depth (k) packed per cache block.
const KC: usize = 256;
/// Columns of `op(B)` packed per cache block.
const NC: usize = 2048;
/// Below this many multiply-adds, packing costs more than it saves.
const SMALL_FLOPS: usize = 256 * 1024;
/// Minimum multiply-adds before a parallel dispatch is worth it.
const PAR_FLOPS: usize = 128 * 1024;
/// Column-block edge for the small-size SYRK path.
const SYRK_BLOCK: usize = 64;
/// Above this many multiply-adds a SYRK routes through the packed
/// microkernel (below it, the unpacked block-pair loop wins).
const SYRK_PACK_FLOPS: usize = 512 * 1024;

static REFERENCE: AtomicBool = AtomicBool::new(false);

/// Routes `Matrix` products, Gramians and Cholesky/SPD-inverse through the
/// pre-optimization serial kernels (`true`) or the packed pooled kernels
/// (`false`, the default). For benchmarking and parity testing only.
pub fn set_reference_kernels(on: bool) {
    REFERENCE.store(on, Ordering::SeqCst);
}

/// `true` while [`set_reference_kernels`] has selected the serial seed
/// kernels.
pub fn reference_kernels() -> bool {
    REFERENCE.load(Ordering::SeqCst)
}

/// The seed GEMM: serial cache-blocked i-k-j loop over row-major storage.
///
/// Kept callable as the comparison baseline for `bench_kernels` and the
/// parity proptests.
pub fn matmul_reference(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    const BLOCK: usize = 64;
    let mut out = vec![0.0; m * n];
    for ib in (0..m).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let ke = (kb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let je = (jb + BLOCK).min(n);
                for i in ib..ie {
                    for kk in kb..ke {
                        let av = a[i * k + kk];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n + jb..kk * n + je];
                        let orow = &mut out[i * n + jb..i * n + je];
                        for (o, &r) in orow.iter_mut().zip(brow.iter()) {
                            *o += av * r;
                        }
                    }
                }
            }
        }
    }
    out
}

/// The seed Gramian: serial upper-triangle `XᵀX` accumulation. Comparison
/// baseline for `bench_kernels` and the parity proptests.
pub fn gramian_reference(rows: usize, d: usize, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; d * d];
    for s in 0..rows {
        let row = &x[s * d..(s + 1) * d];
        for i in 0..d {
            let v = row[i];
            if v == 0.0 {
                continue;
            }
            let orow = &mut out[i * d + i..(i + 1) * d];
            for (o, &r) in orow.iter_mut().zip(row[i..].iter()) {
                *o += v * r;
            }
        }
    }
    for i in 0..d {
        for j in (i + 1)..d {
            out[j * d + i] = out[i * d + j];
        }
    }
    out
}

/// `C = op(A) · op(B)` into a fresh row-major `m × n` buffer.
///
/// `trans_a == false` reads `a` as row-major `m × k`; `true` reads it as
/// row-major `k × m` (i.e. computes `AᵀB` without materializing `Aᵀ`).
/// Likewise `trans_b` for `b` (`false`: `k × n`; `true`: `n × k`).
pub(crate) fn gemm(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    if m * n * k <= SMALL_FLOPS {
        gemm_small(trans_a, trans_b, m, k, n, a, b, &mut out);
        return out;
    }
    let shared = SharedSlice::new(&mut out);
    let row_blocks = m.div_ceil(MC);
    let parallel = pool::is_parallel() && row_blocks > 1 && m * n * k >= PAR_FLOPS;
    for jc in (0..n).step_by(NC) {
        let nc = (jc + NC).min(n) - jc;
        let n_panels = nc.div_ceil(NR);
        let mut bpack = vec![0.0; KC * n_panels * NR];
        for kb in (0..k).step_by(KC) {
            let kc = (kb + KC).min(k) - kb;
            pack_b(trans_b, b, k, n, kb, kc, jc, nc, &mut bpack);
            let body = |blk: usize| {
                let i0 = blk * MC;
                let mc = (i0 + MC).min(m) - i0;
                let mut apack = vec![0.0; KC * MC];
                pack_a(trans_a, a, m, k, i0, mc, kb, kc, &mut apack);
                // SAFETY: each task owns row range [i0, i0 + mc).
                let c = unsafe { shared.slice_mut(i0 * n..(i0 + mc) * n) };
                block_multiply(&apack, &bpack, mc, kc, nc, jc, n, c, 0);
            };
            if parallel {
                pool::parallel_for(row_blocks, body);
            } else {
                for blk in 0..row_blocks {
                    body(blk);
                }
            }
        }
    }
    out
}

/// Unpacked triple-loop for small products (still transpose-free).
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    let at = |i: usize, p: usize| {
        if trans_a {
            a[p * m + i]
        } else {
            a[i * k + p]
        }
    };
    match (trans_a, trans_b) {
        (_, false) => {
            // k-major accumulation over contiguous B rows.
            for i in 0..m {
                let orow = &mut out[i * n..(i + 1) * n];
                for p in 0..k {
                    let av = at(i, p);
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    axpy(av, brow, orow);
                }
            }
        }
        (false, true) => {
            // Row-dot-row: both operands contiguous along k.
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &b[j * k..(j + 1) * k];
                    out[i * n + j] = dot(arow, brow);
                }
            }
        }
        (true, true) => {
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0.0;
                    for p in 0..k {
                        s += a[p * m + i] * b[j * k + p];
                    }
                    out[i * n + j] = s;
                }
            }
        }
    }
}

/// Pipelined dot product: AVX2+FMA when the CPU has it, otherwise four
/// independent scalar partial accumulators.
#[inline]
pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd::available() {
        // SAFETY: AVX2+FMA presence checked above; lengths equal.
        return unsafe { simd::dot(x, y) };
    }
    dot_generic(x, y)
}

/// Portable dot product (four independent partial accumulators).
#[inline]
fn dot_generic(x: &[f64], y: &[f64]) -> f64 {
    // Four independent partial sums so the accumulation chain pipelines.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let xi = &x[c * 4..c * 4 + 4];
        let yi = &y[c * 4..c * 4 + 4];
        for l in 0..4 {
            acc[l] += xi[l] * yi[l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x`: AVX2+FMA when available, portable loop otherwise.
#[inline]
pub(crate) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if simd::available() {
        // SAFETY: AVX2+FMA presence checked above; lengths equal.
        unsafe { simd::axpy(alpha, x, y) };
        return;
    }
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

/// Packs `mc` rows × `kc` depth of `op(A)` into `MR`-row panels,
/// zero-padding the row remainder.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    trans_a: bool,
    a: &[f64],
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    kb: usize,
    kc: usize,
    apack: &mut [f64],
) {
    let _ = m;
    for (panel, ir) in (0..mc).step_by(MR).enumerate() {
        let rows = (ir + MR).min(mc) - ir;
        let dst = &mut apack[panel * KC * MR..];
        for p in 0..kc {
            let d = &mut dst[p * MR..p * MR + MR];
            if trans_a {
                // op(A)(i, p) = a[(kb + p) * m + i]  (contiguous in i).
                let src = &a[(kb + p) * m + i0 + ir..];
                d[..rows].copy_from_slice(&src[..rows]);
            } else {
                for (r, dv) in d.iter_mut().enumerate().take(rows) {
                    *dv = a[(i0 + ir + r) * k + kb + p];
                }
            }
            for dv in d.iter_mut().skip(rows) {
                *dv = 0.0;
            }
        }
    }
}

/// Packs `kc` depth × `nc` cols of `op(B)` into `NR`-col panels,
/// zero-padding the column remainder.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    trans_b: bool,
    b: &[f64],
    k: usize,
    n: usize,
    kb: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bpack: &mut [f64],
) {
    let _ = n;
    for (panel, jr) in (0..nc).step_by(NR).enumerate() {
        let cols = (jr + NR).min(nc) - jr;
        let dst = &mut bpack[panel * KC * NR..];
        for p in 0..kc {
            let d = &mut dst[p * NR..p * NR + NR];
            if trans_b {
                // op(B)(p, j) = b[(jc + j) * k + kb + p].
                for (c, dv) in d.iter_mut().enumerate().take(cols) {
                    *dv = b[(jc + jr + c) * k + kb + p];
                }
            } else {
                let ldb = n;
                let src = &b[(kb + p) * ldb + jc + jr..];
                d[..cols].copy_from_slice(&src[..cols]);
            }
            for dv in d.iter_mut().skip(cols) {
                *dv = 0.0;
            }
        }
    }
}

/// Multiplies one packed `mc × kc` A block against the packed `kc × nc` B
/// block, accumulating into the caller's row slice of C (`mc` full rows,
/// leading dimension `ldc`, starting at column `jc`). `jr0` (`NR`-aligned)
/// skips B panels left of it — the SYRK kernels use this to compute only
/// the upper-triangle column range of each row block.
#[allow(clippy::too_many_arguments)]
fn block_multiply(
    apack: &[f64],
    bpack: &[f64],
    mc: usize,
    kc: usize,
    nc: usize,
    jc: usize,
    ldc: usize,
    c: &mut [f64],
    jr0: usize,
) {
    debug_assert_eq!(jr0 % NR, 0);
    for jr in (jr0..nc).step_by(NR) {
        let bp = jr / NR;
        let cols = (jr + NR).min(nc) - jr;
        let bpanel = &bpack[bp * KC * NR..bp * KC * NR + kc * NR];
        for (ap, ir) in (0..mc).step_by(MR).enumerate() {
            let rows = (ir + MR).min(mc) - ir;
            let apanel = &apack[ap * KC * MR..ap * KC * MR + kc * MR];
            let mut acc = [[0.0f64; NR]; MR];
            microkernel(kc, apanel, bpanel, &mut acc);
            for r in 0..rows {
                let crow = &mut c[(ir + r) * ldc + jc + jr..(ir + r) * ldc + jc + jr + cols];
                for (cv, av) in crow.iter_mut().zip(acc[r].iter()) {
                    *cv += av;
                }
            }
        }
    }
}

/// Register-tiled `MR × NR` rank-`kc` update: AVX2+FMA path when the CPU
/// has it, portable fixed-size-array path otherwise.
#[inline]
fn microkernel(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [[f64; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if simd::available() {
        // SAFETY: AVX2+FMA presence checked above; panel sizes are
        // guaranteed by the packing layout (kc*MR / kc*NR elements).
        unsafe { simd::microkernel(kc, apanel, bpanel, acc) };
        return;
    }
    microkernel_generic(kc, apanel, bpanel, acc)
}

/// Portable microkernel; the fixed-size accumulator array keeps the inner
/// loop fully unrolled and autovectorized.
#[inline(always)]
fn microkernel_generic(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [[f64; NR]; MR]) {
    for p in 0..kc {
        let av: &[f64; MR] = apanel[p * MR..p * MR + MR].try_into().expect("MR panel");
        let bv: &[f64; NR] = bpanel[p * NR..p * NR + NR].try_into().expect("NR panel");
        for r in 0..MR {
            let ar = av[r];
            for cc in 0..NR {
                acc[r][cc] += ar * bv[cc];
            }
        }
    }
}

/// Packed-microkernel SYRK: `C = XᵀX` (`nt == false`, `n = d`) or
/// `C = XXᵀ` (`nt == true`, `n = rows`) over the same panel machinery as
/// [`gemm`], visiting only the B panels at or right of each row block's
/// diagonal (≈ half the FLOPs) and mirroring the result. Bit-identical
/// for any thread count: each row block is owned by one task and k blocks
/// stay sequential.
fn syrk_packed(nt: bool, rows: usize, d: usize, x: &[f64], out: &mut [f64]) {
    let (n, k) = if nt { (rows, d) } else { (d, rows) };
    let (ta, tb) = if nt { (false, true) } else { (true, false) };
    let row_blocks = n.div_ceil(MC);
    let parallel = pool::is_parallel() && row_blocks > 1 && n * n * k / 2 >= PAR_FLOPS;
    let shared = SharedSlice::new(out);
    for jc in (0..n).step_by(NC) {
        let nc = (jc + NC).min(n) - jc;
        let n_panels = nc.div_ceil(NR);
        let mut bpack = vec![0.0; KC * n_panels * NR];
        for kb in (0..k).step_by(KC) {
            let kc = (kb + KC).min(k) - kb;
            pack_b(tb, x, k, n, kb, kc, jc, nc, &mut bpack);
            let body = |blk: usize| {
                let i0 = blk * MC;
                // Upper triangle: this row block only needs columns
                // j ≥ i0, rounded down to the owning NR panel. (`jc` is a
                // multiple of NC, itself a multiple of NR, so the local
                // offset stays panel-aligned.)
                let j_lo = (i0 / NR) * NR;
                if j_lo >= jc + nc {
                    return;
                }
                let jr0 = j_lo.saturating_sub(jc);
                let mc = (i0 + MC).min(n) - i0;
                let mut apack = vec![0.0; KC * MC];
                pack_a(ta, x, n, k, i0, mc, kb, kc, &mut apack);
                // SAFETY: each task owns row range [i0, i0 + mc).
                let c = unsafe { shared.slice_mut(i0 * n..(i0 + mc) * n) };
                block_multiply(&apack, &bpack, mc, kc, nc, jc, n, c, jr0);
            };
            if parallel {
                pool::parallel_for(row_blocks, body);
            } else {
                for blk in 0..row_blocks {
                    body(blk);
                }
            }
        }
    }
    mirror_upper(out, n);
}

/// Symmetric rank-k product `XᵀX` (`x` row-major `rows × d`) into a fresh
/// `d × d` buffer, computing the upper triangle block-wise (half the FLOPs
/// of the equivalent GEMM) and mirroring it.
pub(crate) fn syrk_tn(rows: usize, d: usize, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; d * d];
    if rows == 0 || d == 0 {
        return out;
    }
    if rows * d * d / 2 > SYRK_PACK_FLOPS {
        syrk_packed(false, rows, d, x, &mut out);
        return out;
    }
    let nb = d.div_ceil(SYRK_BLOCK);
    // Upper-triangle block pairs (bi ≤ bj), each owned by exactly one task.
    let pairs: Vec<(usize, usize)> = (0..nb)
        .flat_map(|bi| (bi..nb).map(move |bj| (bi, bj)))
        .collect();
    let shared = SharedSlice::new(&mut out);
    let work = rows * d * d / 2;
    let body = |t: usize| {
        let (bi, bj) = pairs[t];
        let i0 = bi * SYRK_BLOCK;
        let i1 = (i0 + SYRK_BLOCK).min(d);
        let j0 = bj * SYRK_BLOCK;
        let j1 = (j0 + SYRK_BLOCK).min(d);
        // SAFETY: block (bi, bj) rows i0..i1 columns j0..j1 are written by
        // this task only (distinct pairs → disjoint index sets).
        let c = unsafe { shared.slice_mut(0..d * d) };
        for s in 0..rows {
            let row = &x[s * d..(s + 1) * d];
            for i in i0..i1 {
                let v = row[i];
                if v == 0.0 {
                    continue;
                }
                let lo = j0.max(i);
                let crow = &mut c[i * d + lo..i * d + j1];
                axpy(v, &row[lo..j1], crow);
            }
        }
    };
    if pool::is_parallel() && pairs.len() > 1 && work >= PAR_FLOPS {
        pool::parallel_for(pairs.len(), body);
    } else {
        for t in 0..pairs.len() {
            body(t);
        }
    }
    mirror_upper(&mut out, d);
    out
}

/// Symmetric rank-k product `XXᵀ` (`x` row-major `rows × d`) into a fresh
/// `rows × rows` buffer: upper triangle of row-dot-row products, mirrored.
pub(crate) fn syrk_nt(rows: usize, d: usize, x: &[f64]) -> Vec<f64> {
    let n = rows;
    let mut out = vec![0.0; n * n];
    if n == 0 || d == 0 {
        return out;
    }
    if n * n * d / 2 > SYRK_PACK_FLOPS {
        syrk_packed(true, rows, d, x, &mut out);
        return out;
    }
    let nb = n.div_ceil(SYRK_BLOCK);
    let pairs: Vec<(usize, usize)> = (0..nb)
        .flat_map(|bi| (bi..nb).map(move |bj| (bi, bj)))
        .collect();
    let shared = SharedSlice::new(&mut out);
    let work = n * n * d / 2;
    let body = |t: usize| {
        let (bi, bj) = pairs[t];
        let i0 = bi * SYRK_BLOCK;
        let i1 = (i0 + SYRK_BLOCK).min(n);
        let j0 = bj * SYRK_BLOCK;
        let j1 = (j0 + SYRK_BLOCK).min(n);
        // SAFETY: see `syrk_tn` — disjoint upper-triangle blocks per task.
        let c = unsafe { shared.slice_mut(0..n * n) };
        for i in i0..i1 {
            let xi = &x[i * d..(i + 1) * d];
            for j in j0.max(i)..j1 {
                let xj = &x[j * d..(j + 1) * d];
                c[i * n + j] = dot(xi, xj);
            }
        }
    };
    if pool::is_parallel() && pairs.len() > 1 && work >= PAR_FLOPS {
        pool::parallel_for(pairs.len(), body);
    } else {
        for t in 0..pairs.len() {
            body(t);
        }
    }
    mirror_upper(&mut out, n);
    out
}

/// Copies the strictly-upper triangle of a square `d × d` buffer into the
/// lower one.
fn mirror_upper(out: &mut [f64], d: usize) {
    for i in 0..d {
        for j in (i + 1)..d {
            out[j * d + i] = out[i * d + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) * scale)
            .collect()
    }

    fn naive(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
    ) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    let av = if trans_a { a[p * m + i] } else { a[i * k + p] };
                    let bv = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    s += av * bv;
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn gemm_matches_naive_all_transposes_and_edges() {
        // Shapes straddling MR/NR/MC/KC boundaries, including remainders.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 11),
            (63, 65, 66),
            (64, 256, 64),
            (65, 257, 67),
            (130, 40, 90),
        ] {
            let a_n = seq(m * k, 0.01);
            let a_t = seq(k * m, 0.01);
            let b_n = seq(k * n, 0.02);
            let b_t = seq(n * k, 0.02);
            for &(ta, tb) in &[(false, false), (false, true), (true, false), (true, true)] {
                let a = if ta { &a_t } else { &a_n };
                let b = if tb { &b_t } else { &b_n };
                let got = gemm(ta, tb, m, k, n, a, b);
                let want = naive(ta, tb, m, k, n, a, b);
                assert!(
                    max_diff(&got, &want) < 1e-10,
                    "mismatch at {m}x{k}x{n} ta={ta} tb={tb}"
                );
            }
        }
    }

    #[test]
    fn syrk_tn_matches_gemm() {
        for &(rows, d) in &[
            (1usize, 1usize),
            (7, 5),
            (33, 64),
            (50, 65),
            (129, 100),
            (40, 200),
            (300, 130),
        ] {
            let x = seq(rows * d, 0.01);
            let got = syrk_tn(rows, d, &x);
            let want = naive(true, false, d, rows, d, &x, &x);
            assert!(max_diff(&got, &want) < 1e-10, "syrk_tn {rows}x{d}");
            for i in 0..d {
                for j in 0..d {
                    assert_eq!(got[i * d + j], got[j * d + i]);
                }
            }
        }
    }

    #[test]
    fn syrk_nt_matches_gemm() {
        for &(rows, d) in &[
            (1usize, 1usize),
            (5, 7),
            (65, 33),
            (100, 129),
            (200, 40),
            (130, 300),
        ] {
            let x = seq(rows * d, 0.01);
            let got = syrk_nt(rows, d, &x);
            let want = naive(false, true, rows, d, rows, &x, &x);
            assert!(max_diff(&got, &want) < 1e-10, "syrk_nt {rows}x{d}");
        }
    }

    #[test]
    fn reference_kernels_match_packed() {
        let (m, k, n) = (37, 53, 29);
        let a = seq(m * k, 0.01);
        let b = seq(k * n, 0.02);
        let packed = gemm(false, false, m, k, n, &a, &b);
        let reference = matmul_reference(m, k, n, &a, &b);
        assert!(max_diff(&packed, &reference) < 1e-11);

        let x = seq(41 * 23, 0.01);
        assert!(max_diff(&syrk_tn(41, 23, &x), &gramian_reference(41, 23, &x)) < 1e-11);
    }

    #[test]
    fn reference_mode_toggle() {
        assert!(!reference_kernels());
        set_reference_kernels(true);
        assert!(reference_kernels());
        set_reference_kernels(false);
        assert!(!reference_kernels());
    }
}
