//! A shared, lazily-initialized persistent worker pool for the dense kernels.
//!
//! Every parallel kernel in this crate (GEMM, SYRK, blocked Cholesky, im2col
//! in `spdkfac-nn`) dispatches work through one process-wide pool instead of
//! spawning scoped threads per call. The pool is sized by the
//! `SPDKFAC_THREADS` environment variable (read once, at first use) and
//! defaults to [`std::thread::available_parallelism`]. `SPDKFAC_THREADS=1`
//! disables parallel dispatch entirely — every kernel then runs serially on
//! the calling thread, which is also the fallback whenever the work is too
//! small to amortise a dispatch.
//!
//! # Determinism
//!
//! [`parallel_for`] distributes *task indices*, not data: every kernel built
//! on it assigns each output region to exactly one task and runs the serial
//! loop order inside that task. Which OS thread executes a task is
//! scheduler-dependent, but the floating-point result is bit-identical to
//! the serial execution for any thread count — the trajectory-equivalence
//! guarantees of the trainers do not depend on `SPDKFAC_THREADS`.
//!
//! # Nesting
//!
//! Tasks must never block on the pool (a task waiting for queued sub-tasks
//! while every worker waits likewise would deadlock), so a `parallel_for`
//! issued from inside a pool task runs serially on that task's thread. The
//! pool is safe to use concurrently from many caller threads (the
//! distributed trainers drive it from one thread per rank).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};

/// Number of parallel lanes (caller + persistent workers) the pool uses.
///
/// This is the value of `SPDKFAC_THREADS` if set and valid, otherwise
/// [`std::thread::available_parallelism`] (or 1 when unavailable).
pub fn threads() -> usize {
    global().lanes
}

/// `true` when the pool will actually fan work out (more than one lane).
pub fn is_parallel() -> bool {
    threads() > 1
}

/// Runs `f(0), f(1), …, f(tasks - 1)`, distributing task indices across the
/// persistent pool. The call returns after every task has completed.
///
/// Tasks must write to disjoint data; the kernels in this crate guarantee
/// that by partitioning output rows/blocks by task index. Runs serially on
/// the calling thread when the pool has one lane, when `tasks <= 1`, or when
/// invoked from inside another pool task (see module docs on nesting).
///
/// # Panics
///
/// Propagates a panic from any task (the first observed one aborts the
/// remaining tasks early and `parallel_for` panics on the caller).
pub fn parallel_for<F: Fn(usize) + Sync>(tasks: usize, f: F) {
    global().run(tasks, &f);
}

/// A `*mut f64` window that tasks may write through concurrently, provided
/// they touch disjoint ranges.
///
/// The kernels hand each task a row/block range keyed by its task index, so
/// ranges never overlap. The borrow that created the window outlives the
/// `parallel_for` call because the call joins every task before returning.
pub struct SharedSlice<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f64]>,
}

unsafe impl Send for SharedSlice<'_> {}
unsafe impl Sync for SharedSlice<'_> {}

impl<'a> SharedSlice<'a> {
    /// Wraps a mutable slice for disjoint multi-task writes.
    pub fn new(data: &'a mut [f64]) -> Self {
        SharedSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Total length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows `range` as a mutable subslice.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that no two concurrent tasks request
    /// overlapping ranges and that `range` is in bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        debug_assert!(range.end <= self.len, "SharedSlice range out of bounds");
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

thread_local! {
    /// Set while this thread is executing pool work (worker threads always,
    /// caller threads during their participation). Nested `parallel_for`
    /// calls observe it and degrade to serial execution.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Shared state of one fork-join region, owned by the caller's stack frame.
/// Helpers reach it through a raw pointer; the caller does not return until
/// every helper that received the pointer has signalled completion, so the
/// pointer never dangles.
struct Region {
    /// Erased task body.
    f: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of tasks.
    tasks: usize,
    /// Set when any task panicked; stops further task claims.
    panicked: AtomicBool,
    /// Helpers still holding a reference to this region.
    active_helpers: Mutex<usize>,
    done: Condvar,
}

impl Region {
    /// Claims and runs tasks until the index space is exhausted.
    fn work(&self) {
        let f = unsafe { &*self.f };
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Message handed to a worker: a pointer to the caller's [`Region`].
struct RegionPtr(*const Region);
unsafe impl Send for RegionPtr {}

struct Pool {
    /// Parallel lanes: the calling thread plus `lanes - 1` workers.
    lanes: usize,
    injector: Mutex<mpsc::Sender<RegionPtr>>,
}

impl Pool {
    fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let nested = IN_POOL_TASK.with(|t| t.get());
        if self.lanes <= 1 || tasks == 1 || nested {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        // SAFETY: erases the borrow lifetime of `f`. The pointer is only
        // dereferenced by helpers enlisted below, and `run` does not return
        // until every one of them has signalled completion, so the borrow is
        // live for every dereference.
        let f_erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
        let region = Region {
            f: f_erased,
            next: AtomicUsize::new(0),
            tasks,
            panicked: AtomicBool::new(false),
            active_helpers: Mutex::new(0),
            done: Condvar::new(),
        };
        // The caller is one lane; enlist at most one helper per extra task.
        let helpers = (self.lanes - 1).min(tasks - 1);
        *region.active_helpers.lock().expect("pool lock") = helpers;
        {
            let tx = self.injector.lock().expect("pool injector");
            for _ in 0..helpers {
                tx.send(RegionPtr(&region)).expect("pool worker hung up");
            }
        }
        // Participate, then wait for every enlisted helper to drop its
        // reference (they may still be between dequeue and decrement even
        // after all task indices are claimed).
        IN_POOL_TASK.with(|t| t.set(true));
        region.work();
        IN_POOL_TASK.with(|t| t.set(false));
        let mut active = region.active_helpers.lock().expect("pool lock");
        while *active > 0 {
            active = region.done.wait(active).expect("pool wait");
        }
        drop(active);
        if region.panicked.load(Ordering::Relaxed) {
            panic!("spdkfac_tensor::pool: a worker task panicked");
        }
    }
}

fn configured_lanes() -> usize {
    match std::env::var("SPDKFAC_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let lanes = configured_lanes();
        let (tx, rx) = mpsc::channel::<RegionPtr>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        for w in 1..lanes {
            let rx = std::sync::Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("spdkfac-pool-{w}"))
                .spawn(move || {
                    IN_POOL_TASK.with(|t| t.set(true));
                    loop {
                        // Hold the receiver lock only while dequeuing.
                        let msg = { rx.lock().expect("pool receiver").recv() };
                        let Ok(RegionPtr(region)) = msg else {
                            return; // injector dropped: process is exiting
                        };
                        // SAFETY: the caller blocks in `Pool::run` until
                        // `active_helpers` reaches zero, so `region` is live
                        // for the whole body of this iteration.
                        let region = unsafe { &*region };
                        region.work();
                        let mut active = region.active_helpers.lock().expect("pool lock");
                        *active -= 1;
                        if *active == 0 {
                            region.done.notify_one();
                        }
                    }
                })
                .expect("failed to spawn pool worker");
        }
        Pool {
            lanes,
            injector: Mutex::new(tx),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} hit count");
        }
    }

    #[test]
    fn zero_and_one_task_degenerate_cases() {
        parallel_for(0, |_| panic!("must not run"));
        let ran = AtomicBool::new(false);
        parallel_for(1, |i| {
            assert_eq!(i, 0);
            ran.store(true, Ordering::Relaxed);
        });
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn nested_calls_run_serially_and_complete() {
        let total = AtomicU64::new(0);
        parallel_for(8, |_| {
            parallel_for(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let sums: Vec<u64> = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    s.spawn(move || {
                        let acc = AtomicU64::new(0);
                        parallel_for(32, |i| {
                            acc.fetch_add(t * 1000 + i as u64, Ordering::Relaxed);
                        });
                        acc.load(Ordering::Relaxed)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (t, s) in sums.iter().enumerate() {
            let expect = (t as u64) * 1000 * 32 + (0..32).sum::<u64>();
            assert_eq!(*s, expect, "caller {t}");
        }
    }

    #[test]
    fn shared_slice_disjoint_writes() {
        let mut data = vec![0.0f64; 1024];
        let shared = SharedSlice::new(&mut data);
        assert_eq!(shared.len(), 1024);
        assert!(!shared.is_empty());
        parallel_for(16, |t| {
            let chunk = unsafe { shared.slice_mut(t * 64..(t + 1) * 64) };
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (t * 64 + k) as f64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn task_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            parallel_for(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(res.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(threads() >= 1);
    }
}
