//! Per-layer specifications: dimensions, parameters, FLOPs, factor sizes.

/// The kind of a preconditionable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// A 2-D convolution (possibly non-square kernel, e.g. Inception's 1×7).
    Conv {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride (same in both axes).
        stride: usize,
        /// Padding rows on each side.
        pad_h: usize,
        /// Padding columns on each side.
        pad_w: usize,
    },
    /// A fully-connected layer.
    Linear {
        /// Input features.
        d_in: usize,
        /// Output features.
        d_out: usize,
    },
}

/// One preconditionable layer of a model profile.
///
/// `in_h`/`in_w` record the spatial size of the layer's input feature map
/// (1×1 for linear layers); they determine FLOPs and the number of spatial
/// positions contributing to the Kronecker factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `"layer3.4.conv2"`).
    pub name: String,
    /// Layer kind and dimensions.
    pub kind: LayerKind,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl LayerSpec {
    /// Convolution constructor with square geometry.
    pub fn conv(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_hw: usize,
    ) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv {
                c_in,
                c_out,
                kh: k,
                kw: k,
                stride,
                pad_h: pad,
                pad_w: pad,
            },
            in_h: in_hw,
            in_w: in_hw,
        }
    }

    /// Convolution constructor with a rectangular kernel (e.g. 1×7).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_rect(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kh: usize,
        kw: usize,
        pad_h: usize,
        pad_w: usize,
        in_hw: usize,
    ) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv {
                c_in,
                c_out,
                kh,
                kw,
                stride: 1,
                pad_h,
                pad_w,
            },
            in_h: in_hw,
            in_w: in_hw,
        }
    }

    /// Linear-layer constructor.
    pub fn linear(name: impl Into<String>, d_in: usize, d_out: usize) -> Self {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Linear { d_in, d_out },
            in_h: 1,
            in_w: 1,
        }
    }

    /// Output feature-map height.
    pub fn out_h(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                kh, stride, pad_h, ..
            } => (self.in_h + 2 * pad_h - kh) / stride + 1,
            LayerKind::Linear { .. } => 1,
        }
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                kw, stride, pad_w, ..
            } => (self.in_w + 2 * pad_w - kw) / stride + 1,
            LayerKind::Linear { .. } => 1,
        }
    }

    /// Kronecker factor `A` dimension: `C_in·k_h·k_w` for convolutions
    /// (Grosse–Martens, no bias augmentation — see DESIGN.md §4), `d_in` for
    /// linear layers.
    pub fn a_dim(&self) -> usize {
        match self.kind {
            LayerKind::Conv { c_in, kh, kw, .. } => c_in * kh * kw,
            LayerKind::Linear { d_in, .. } => d_in,
        }
    }

    /// Kronecker factor `G` dimension: `C_out` / `d_out`.
    pub fn g_dim(&self) -> usize {
        match self.kind {
            LayerKind::Conv { c_out, .. } => c_out,
            LayerKind::Linear { d_out, .. } => d_out,
        }
    }

    /// Packed upper-triangle element count of factor `A`: `d(d+1)/2`.
    pub fn packed_a(&self) -> usize {
        let d = self.a_dim();
        d * (d + 1) / 2
    }

    /// Packed upper-triangle element count of factor `G`.
    pub fn packed_g(&self) -> usize {
        let d = self.g_dim();
        d * (d + 1) / 2
    }

    /// Trainable parameter count (weights; bias only for linear layers —
    /// paper CNNs use batch-norm after convolutions, so convs are bias-free).
    pub fn params(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                c_in,
                c_out,
                kh,
                kw,
                ..
            } => c_in * c_out * kh * kw,
            LayerKind::Linear { d_in, d_out } => d_in * d_out + d_out,
        }
    }

    /// Forward-pass multiply–add FLOPs for a mini-batch of `batch` samples
    /// (counted as 2 ops per MAC).
    pub fn fwd_flops(&self, batch: usize) -> f64 {
        let per_sample = match self.kind {
            LayerKind::Conv { c_out, .. } => {
                2.0 * (self.a_dim() * c_out * self.out_h() * self.out_w()) as f64
            }
            LayerKind::Linear { d_in, d_out } => 2.0 * (d_in * d_out) as f64,
        };
        per_sample * batch as f64
    }

    /// Backward-pass FLOPs (weight-gradient GEMM + input-gradient GEMM ≈ 2×
    /// the forward cost).
    pub fn bwd_flops(&self, batch: usize) -> f64 {
        2.0 * self.fwd_flops(batch)
    }

    /// FLOPs to build Kronecker factor `A = aᵀa` from the capture rows
    /// (symmetric rank-k update: `rows · d_A²`).
    pub fn factor_a_flops(&self, batch: usize) -> f64 {
        let rows = (batch * self.out_h() * self.out_w()) as f64;
        rows * (self.a_dim() as f64).powi(2)
    }

    /// FLOPs to build Kronecker factor `G = gᵀg`.
    pub fn factor_g_flops(&self, batch: usize) -> f64 {
        let rows = (batch * self.out_h() * self.out_w()) as f64;
        rows * (self.g_dim() as f64).powi(2)
    }

    /// FLOPs to precondition the gradient `G⁻¹ ∇W A⁻¹` (two GEMMs).
    pub fn precond_flops(&self) -> f64 {
        let (da, dg) = (self.a_dim() as f64, self.g_dim() as f64);
        2.0 * dg * dg * da + 2.0 * dg * da * da
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_conv1_dims() {
        // Conv1 of ResNet-50: 7×7, 3→64, stride 2, pad 3, 224 input.
        let l = LayerSpec::conv("conv1", 3, 64, 7, 2, 3, 224);
        assert_eq!(l.out_h(), 112);
        assert_eq!(l.a_dim(), 147);
        assert_eq!(l.g_dim(), 64);
        assert_eq!(l.packed_g(), 2080); // Fig. 3 smallest ResNet-50 factor
        assert_eq!(l.params(), 9408);
    }

    #[test]
    fn largest_resnet50_factor_matches_fig3() {
        // 3×3 conv on 512 channels: a_dim = 4608, packed = 10,619,136.
        let l = LayerSpec::conv("layer4.x.conv2", 512, 512, 3, 1, 1, 7);
        assert_eq!(l.a_dim(), 4608);
        assert_eq!(l.packed_a(), 10_619_136);
    }

    #[test]
    fn rect_kernel_dims() {
        // Inception 1×7 conv: kernel (1,7), pad (0,3).
        let l = LayerSpec::conv_rect("b2.1x7", 192, 224, 1, 7, 0, 3, 17);
        assert_eq!(l.out_h(), 17);
        assert_eq!(l.out_w(), 17);
        assert_eq!(l.a_dim(), 192 * 7);
        assert_eq!(l.params(), 192 * 224 * 7);
    }

    #[test]
    fn linear_dims() {
        let l = LayerSpec::linear("fc", 2048, 1000);
        assert_eq!(l.a_dim(), 2048);
        assert_eq!(l.g_dim(), 1000);
        assert_eq!(l.params(), 2048 * 1000 + 1000);
        assert_eq!(l.out_h(), 1);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let l = LayerSpec::conv("c", 64, 64, 3, 1, 1, 56);
        assert!((l.fwd_flops(32) / l.fwd_flops(1) - 32.0).abs() < 1e-9);
        assert!((l.bwd_flops(1) / l.fwd_flops(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stride_two_halves_output() {
        let l = LayerSpec::conv("c", 64, 128, 3, 2, 1, 56);
        assert_eq!(l.out_h(), 28);
    }
}
