//! DenseNet-201 (Huang et al., 2017) with bottleneck dense layers.

use crate::profile::ModelProfile;
use crate::spec::LayerSpec;

/// Growth rate `k` of DenseNet-201.
const GROWTH: usize = 32;
/// Bottleneck width multiplier (`bn_size`).
const BN_SIZE: usize = 4;

/// DenseNet-201 at the paper's per-GPU batch size 16 (Table II row 3).
///
/// Blocks `[6, 12, 48, 32]`; every dense layer is a 1×1 bottleneck
/// (`c → 4k`) followed by a 3×3 conv (`4k → k`); transitions halve channels
/// and spatial size. KFAC layers: `1 + 2·(6+12+48+32) + 3 + 1 = 201`.
pub fn densenet201() -> ModelProfile {
    let blocks = [6usize, 12, 48, 32];
    let mut layers = Vec::new();
    layers.push(LayerSpec::conv("conv0", 3, 64, 7, 2, 3, 224));
    let mut hw = 56; // after max-pool
    let mut c = 64;
    for (bi, &b) in blocks.iter().enumerate() {
        for li in 0..b {
            let prefix = format!("denseblock{}.denselayer{}", bi + 1, li + 1);
            layers.push(LayerSpec::conv(
                format!("{prefix}.conv1"),
                c,
                BN_SIZE * GROWTH,
                1,
                1,
                0,
                hw,
            ));
            layers.push(LayerSpec::conv(
                format!("{prefix}.conv2"),
                BN_SIZE * GROWTH,
                GROWTH,
                3,
                1,
                1,
                hw,
            ));
            c += GROWTH;
        }
        if bi + 1 < blocks.len() {
            // Transition: 1×1 halving conv, then 2×2 average pool.
            layers.push(LayerSpec::conv(
                format!("transition{}.conv", bi + 1),
                c,
                c / 2,
                1,
                1,
                0,
                hw,
            ));
            c /= 2;
            hw /= 2;
        }
    }
    layers.push(LayerSpec::linear("classifier", c, 1000));
    ModelProfile::new("DenseNet-201", layers, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_is_201() {
        assert_eq!(densenet201().num_kfac_layers(), 201);
    }

    #[test]
    fn final_channels_are_1920() {
        let m = densenet201();
        let fc = m.layers().last().unwrap();
        assert_eq!(fc.a_dim(), 1920);
        assert_eq!(fc.g_dim(), 1000);
    }

    #[test]
    fn channel_growth_inside_block() {
        let m = densenet201();
        // denseblock1.denselayer1.conv1 reads 64 channels, denselayer2 reads 96.
        let c1 = m
            .layers()
            .iter()
            .find(|l| l.name == "denseblock1.denselayer1.conv1")
            .unwrap();
        let c2 = m
            .layers()
            .iter()
            .find(|l| l.name == "denseblock1.denselayer2.conv1")
            .unwrap();
        assert_eq!(c1.a_dim(), 64);
        assert_eq!(c2.a_dim(), 96);
    }

    #[test]
    fn transitions_halve_channels() {
        let m = densenet201();
        let t1 = m
            .layers()
            .iter()
            .find(|l| l.name == "transition1.conv")
            .unwrap();
        assert_eq!(t1.a_dim(), 256);
        assert_eq!(t1.g_dim(), 128);
    }

    #[test]
    fn params_near_torchvision() {
        // torchvision densenet201 = 20.01M including batch-norm.
        let p = densenet201().total_params() as f64;
        assert!((p - 20.0e6).abs() / 20.0e6 < 0.03, "params = {p}");
    }

    #[test]
    fn many_small_factors() {
        // DenseNet's defining property for the paper: hundreds of *small*
        // factors (all G dims ≤ 1000), which is what makes Seq-Dist's
        // per-tensor broadcast startup cost dominate (Fig. 12).
        let m = densenet201();
        assert!(m.g_dims().iter().all(|&d| d <= 1000));
        let small = m.all_factor_dims().iter().filter(|&&d| d <= 256).count();
        assert!(small > 150, "expected many small factors, got {small}");
    }
}
