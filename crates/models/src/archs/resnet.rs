//! ResNet-50 / ResNet-152 bottleneck architectures (He et al., 2016).

use crate::profile::ModelProfile;
use crate::spec::LayerSpec;

/// Builds a bottleneck ResNet profile for ImageNet (224×224 input).
///
/// `blocks` is the per-stage block count (`[3,4,6,3]` for ResNet-50,
/// `[3,8,36,3]` for ResNet-152). KFAC layer count = `1 + 3·Σblocks + 4 + 1`.
fn resnet_bottleneck(name: &str, blocks: [usize; 4], batch: usize) -> ModelProfile {
    let mut layers = Vec::new();
    // Stem: conv1 7×7/2 then 3×3/2 max-pool (pool is not preconditionable).
    layers.push(LayerSpec::conv("conv1", 3, 64, 7, 2, 3, 224));
    let mut hw = 56; // after max-pool
    let mut c_in = 64;
    let widths = [64usize, 128, 256, 512];
    for (stage, (&b, &w)) in blocks.iter().zip(widths.iter()).enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        let c_out = 4 * w;
        for blk in 0..b {
            let prefix = format!("layer{}.{blk}", stage + 1);
            let s = if blk == 0 { stride } else { 1 };
            let in_hw = hw;
            let out_hw = if s == 2 { hw / 2 } else { hw };
            // conv1 1×1 reduce (stride 1, torchvision v1.5 places stride on 3×3).
            layers.push(LayerSpec::conv(
                format!("{prefix}.conv1"),
                c_in,
                w,
                1,
                1,
                0,
                in_hw,
            ));
            // conv2 3×3 (strided in the first block of a stage).
            layers.push(LayerSpec::conv(
                format!("{prefix}.conv2"),
                w,
                w,
                3,
                s,
                1,
                in_hw,
            ));
            // conv3 1×1 expand.
            layers.push(LayerSpec::conv(
                format!("{prefix}.conv3"),
                w,
                c_out,
                1,
                1,
                0,
                out_hw,
            ));
            if blk == 0 {
                // Downsample shortcut 1×1 (strided).
                layers.push(LayerSpec::conv(
                    format!("{prefix}.downsample"),
                    c_in,
                    c_out,
                    1,
                    s,
                    0,
                    in_hw,
                ));
            }
            c_in = c_out;
            hw = out_hw;
        }
    }
    // Global average pool → fc.
    layers.push(LayerSpec::linear("fc", c_in, 1000));
    ModelProfile::new(name, layers, batch)
}

/// ResNet-50 at the paper's per-GPU batch size 32 (Table II row 1).
pub fn resnet50() -> ModelProfile {
    resnet_bottleneck("ResNet-50", [3, 4, 6, 3], 32)
}

/// ResNet-152 at the paper's per-GPU batch size 8 (Table II row 2).
pub fn resnet152() -> ModelProfile {
    resnet_bottleneck("ResNet-152", [3, 8, 36, 3], 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_layer_count() {
        assert_eq!(resnet50().num_kfac_layers(), 54);
    }

    #[test]
    fn resnet152_layer_count() {
        assert_eq!(resnet152().num_kfac_layers(), 156);
    }

    #[test]
    fn resnet50_stage_dims() {
        let m = resnet50();
        // First bottleneck conv after the stem: 1×1 64→64 at 56².
        let l = &m.layers()[1];
        assert_eq!(l.a_dim(), 64);
        assert_eq!(l.g_dim(), 64);
        assert_eq!(l.in_h, 56);
        // Final fc: 2048→1000.
        let fc = m.layers().last().unwrap();
        assert_eq!(fc.a_dim(), 2048);
        assert_eq!(fc.g_dim(), 1000);
    }

    #[test]
    fn resnet50_spatial_pipeline() {
        let m = resnet50();
        // Stage-4 3×3 convs run at 7×7 and have a_dim 4608.
        let last3x3 = m.layers().iter().filter(|l| l.a_dim() == 4608).count();
        assert_eq!(last3x3, 3, "three 3×3 convs on 512 channels");
    }

    #[test]
    fn resnet50_param_count_close_to_torchvision() {
        // torchvision resnet50 = 25.557M including batch-norm; conv+fc ≈ 25.50M.
        let p = resnet50().total_params() as f64;
        assert!((p - 25.5e6).abs() / 25.5e6 < 0.01, "params = {p}");
    }

    #[test]
    fn downsample_present_once_per_stage() {
        let m = resnet50();
        let ds = m
            .layers()
            .iter()
            .filter(|l| l.name.contains("downsample"))
            .count();
        assert_eq!(ds, 4);
    }
}
