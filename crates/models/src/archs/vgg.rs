//! VGG-16 (Simonyan & Zisserman, 2015) — not in the paper's Table II, but
//! the standard K-FAC stress case (kfac-pytorch / KAISA evaluate it): its
//! first fully-connected layer has a **25088-dimensional** `A` factor, far
//! outside the `d ∈ [64, 8192]` range the paper fits Eq. 26 on, which is
//! where the exponential cost model breaks down (see
//! `spdkfac_core::perf::CubicCostModel`).

use crate::profile::ModelProfile;
use crate::spec::LayerSpec;

/// VGG-16 at batch size 32: 13 convolutions + 3 fully-connected layers.
pub fn vgg16() -> ModelProfile {
    let cfg: [(usize, usize); 13] = [
        (3, 64),
        (64, 64),
        (64, 128),
        (128, 128),
        (128, 256),
        (256, 256),
        (256, 256),
        (256, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
    ];
    // Max-pool after conv indices 1, 3, 6, 9, 12 (0-based).
    let pool_after = [1usize, 3, 6, 9, 12];
    let mut layers = Vec::new();
    let mut hw = 224usize;
    for (i, &(cin, cout)) in cfg.iter().enumerate() {
        layers.push(LayerSpec::conv(
            format!("conv{}", i + 1),
            cin,
            cout,
            3,
            1,
            1,
            hw,
        ));
        if pool_after.contains(&i) {
            hw /= 2;
        }
    }
    debug_assert_eq!(hw, 7);
    layers.push(LayerSpec::linear("fc1", 512 * 7 * 7, 4096));
    layers.push(LayerSpec::linear("fc2", 4096, 4096));
    layers.push(LayerSpec::linear("fc3", 4096, 1000));
    ModelProfile::new("VGG-16", layers, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_preconditionable_layers() {
        assert_eq!(vgg16().num_kfac_layers(), 16);
    }

    #[test]
    fn params_match_reference() {
        // torchvision vgg16: 138.36M parameters.
        let p = vgg16().total_params() as f64;
        assert!((p - 138.36e6).abs() / 138.36e6 < 0.01, "params = {p}");
    }

    #[test]
    fn fc1_factor_is_the_stress_case() {
        let m = vgg16();
        let fc1 = m.layers().iter().find(|l| l.name == "fc1").unwrap();
        assert_eq!(fc1.a_dim(), 25_088);
        // Its packed A factor alone is ~315M elements — larger than all of
        // ResNet-152's factors combined.
        assert!(fc1.packed_a() > 300_000_000);
    }

    #[test]
    fn conv_stack_spatial_pipeline() {
        let m = vgg16();
        assert_eq!(m.layers()[0].out_h(), 224);
        let last_conv = &m.layers()[12];
        assert_eq!(last_conv.in_h, 14);
    }
}
