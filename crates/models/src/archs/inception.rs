//! Inception-v4 (Szegedy et al., 2017).
//!
//! 149 convolutions + 1 fully-connected layer = 150 preconditionable layers
//! (Table II row 4). Parallel branches are flattened in definition order;
//! spatial sizes follow the standard 299×299 input pipeline
//! (299 → 149 → 147 → 73 → 71 → 35 → 17 → 8).

use crate::profile::ModelProfile;
use crate::spec::LayerSpec;

/// Pushes the stem convolutions; returns the output channel count (384) at
/// 35×35.
fn stem(l: &mut Vec<LayerSpec>) -> usize {
    l.push(LayerSpec::conv("stem.conv1", 3, 32, 3, 2, 0, 299)); // -> 149
    l.push(LayerSpec::conv("stem.conv2", 32, 32, 3, 1, 0, 149)); // -> 147
    l.push(LayerSpec::conv("stem.conv3", 32, 64, 3, 1, 1, 147)); // -> 147
                                                                 // mixed_3a: max-pool ‖ strided conv -> 73, channels 64 + 96 = 160.
    l.push(LayerSpec::conv("stem.mixed3a.conv", 64, 96, 3, 2, 0, 147));
    // mixed_4a on 73×73 input (160 ch): two branches -> 96 + 96 = 192 at 71.
    l.push(LayerSpec::conv("stem.mixed4a.b1.1x1", 160, 64, 1, 1, 0, 73));
    l.push(LayerSpec::conv("stem.mixed4a.b1.3x3", 64, 96, 3, 1, 0, 73)); // -> 71
    l.push(LayerSpec::conv("stem.mixed4a.b2.1x1", 160, 64, 1, 1, 0, 73));
    l.push(LayerSpec::conv_rect(
        "stem.mixed4a.b2.1x7",
        64,
        64,
        1,
        7,
        0,
        3,
        73,
    ));
    l.push(LayerSpec::conv_rect(
        "stem.mixed4a.b2.7x1",
        64,
        64,
        7,
        1,
        3,
        0,
        73,
    ));
    l.push(LayerSpec::conv("stem.mixed4a.b2.3x3", 64, 96, 3, 1, 0, 73)); // -> 71
                                                                         // mixed_5a: strided conv ‖ max-pool -> 35, channels 192 + 192 = 384.
    l.push(LayerSpec::conv("stem.mixed5a.conv", 192, 192, 3, 2, 0, 71));
    384
}

/// Inception-A block (input 384 ch at 35×35, output 384 ch): 7 convolutions.
fn inception_a(l: &mut Vec<LayerSpec>, idx: usize) {
    let p = format!("inceptionA{idx}");
    let hw = 35;
    let c = 384;
    l.push(LayerSpec::conv(format!("{p}.b1.1x1"), c, 96, 1, 1, 0, hw));
    l.push(LayerSpec::conv(format!("{p}.b2.1x1"), c, 64, 1, 1, 0, hw));
    l.push(LayerSpec::conv(format!("{p}.b2.3x3"), 64, 96, 3, 1, 1, hw));
    l.push(LayerSpec::conv(format!("{p}.b3.1x1"), c, 64, 1, 1, 0, hw));
    l.push(LayerSpec::conv(format!("{p}.b3.3x3a"), 64, 96, 3, 1, 1, hw));
    l.push(LayerSpec::conv(format!("{p}.b3.3x3b"), 96, 96, 3, 1, 1, hw));
    l.push(LayerSpec::conv(
        format!("{p}.b4.pool1x1"),
        c,
        96,
        1,
        1,
        0,
        hw,
    ));
}

/// Reduction-A (384 → 1024 ch, 35 → 17): 4 convolutions.
fn reduction_a(l: &mut Vec<LayerSpec>) {
    let hw = 35;
    l.push(LayerSpec::conv("reductionA.b1.3x3", 384, 384, 3, 2, 0, hw));
    l.push(LayerSpec::conv("reductionA.b2.1x1", 384, 192, 1, 1, 0, hw));
    l.push(LayerSpec::conv("reductionA.b2.3x3a", 192, 224, 3, 1, 1, hw));
    l.push(LayerSpec::conv("reductionA.b2.3x3b", 224, 256, 3, 2, 0, hw));
}

/// Inception-B block (input 1024 ch at 17×17): 10 convolutions.
fn inception_b(l: &mut Vec<LayerSpec>, idx: usize) {
    let p = format!("inceptionB{idx}");
    let hw = 17;
    let c = 1024;
    l.push(LayerSpec::conv(format!("{p}.b1.1x1"), c, 384, 1, 1, 0, hw));
    l.push(LayerSpec::conv(format!("{p}.b2.1x1"), c, 192, 1, 1, 0, hw));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b2.1x7"),
        192,
        224,
        1,
        7,
        0,
        3,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b2.7x1"),
        224,
        256,
        7,
        1,
        3,
        0,
        hw,
    ));
    l.push(LayerSpec::conv(format!("{p}.b3.1x1"), c, 192, 1, 1, 0, hw));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.7x1a"),
        192,
        192,
        7,
        1,
        3,
        0,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.1x7a"),
        192,
        224,
        1,
        7,
        0,
        3,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.7x1b"),
        224,
        224,
        7,
        1,
        3,
        0,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.1x7b"),
        224,
        256,
        1,
        7,
        0,
        3,
        hw,
    ));
    l.push(LayerSpec::conv(
        format!("{p}.b4.pool1x1"),
        c,
        128,
        1,
        1,
        0,
        hw,
    ));
}

/// Reduction-B (1024 → 1536 ch, 17 → 8): 6 convolutions.
fn reduction_b(l: &mut Vec<LayerSpec>) {
    let hw = 17;
    l.push(LayerSpec::conv("reductionB.b1.1x1", 1024, 192, 1, 1, 0, hw));
    l.push(LayerSpec::conv("reductionB.b1.3x3", 192, 192, 3, 2, 0, hw));
    l.push(LayerSpec::conv("reductionB.b2.1x1", 1024, 256, 1, 1, 0, hw));
    l.push(LayerSpec::conv_rect(
        "reductionB.b2.1x7",
        256,
        256,
        1,
        7,
        0,
        3,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        "reductionB.b2.7x1",
        256,
        320,
        7,
        1,
        3,
        0,
        hw,
    ));
    l.push(LayerSpec::conv("reductionB.b2.3x3", 320, 320, 3, 2, 0, hw));
}

/// Inception-C block (input 1536 ch at 8×8): 10 convolutions.
fn inception_c(l: &mut Vec<LayerSpec>, idx: usize) {
    let p = format!("inceptionC{idx}");
    let hw = 8;
    let c = 1536;
    l.push(LayerSpec::conv(format!("{p}.b1.1x1"), c, 256, 1, 1, 0, hw));
    l.push(LayerSpec::conv(format!("{p}.b2.1x1"), c, 384, 1, 1, 0, hw));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b2.1x3"),
        384,
        256,
        1,
        3,
        0,
        1,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b2.3x1"),
        384,
        256,
        3,
        1,
        1,
        0,
        hw,
    ));
    l.push(LayerSpec::conv(format!("{p}.b3.1x1"), c, 384, 1, 1, 0, hw));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.1x3"),
        384,
        448,
        1,
        3,
        0,
        1,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.3x1"),
        448,
        512,
        3,
        1,
        1,
        0,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.out1x3"),
        512,
        256,
        1,
        3,
        0,
        1,
        hw,
    ));
    l.push(LayerSpec::conv_rect(
        format!("{p}.b3.out3x1"),
        512,
        256,
        3,
        1,
        1,
        0,
        hw,
    ));
    l.push(LayerSpec::conv(
        format!("{p}.b4.pool1x1"),
        c,
        256,
        1,
        1,
        0,
        hw,
    ));
}

/// Inception-v4 at the paper's per-GPU batch size 16 (Table II row 4).
pub fn inceptionv4() -> ModelProfile {
    let mut layers = Vec::new();
    let _stem_out = stem(&mut layers);
    for i in 0..4 {
        inception_a(&mut layers, i);
    }
    reduction_a(&mut layers);
    for i in 0..7 {
        inception_b(&mut layers, i);
    }
    reduction_b(&mut layers);
    for i in 0..3 {
        inception_c(&mut layers, i);
    }
    layers.push(LayerSpec::linear("last_linear", 1536, 1000));
    ModelProfile::new("Inception-v4", layers, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_is_150() {
        assert_eq!(inceptionv4().num_kfac_layers(), 150);
    }

    #[test]
    fn block_conv_counts() {
        let mut l = Vec::new();
        assert_eq!(stem(&mut l), 384);
        assert_eq!(l.len(), 11);
        l.clear();
        inception_a(&mut l, 0);
        assert_eq!(l.len(), 7);
        l.clear();
        inception_b(&mut l, 0);
        assert_eq!(l.len(), 10);
        l.clear();
        inception_c(&mut l, 0);
        assert_eq!(l.len(), 10);
        l.clear();
        reduction_a(&mut l);
        assert_eq!(l.len(), 4);
        l.clear();
        reduction_b(&mut l);
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn spatial_pipeline() {
        let m = inceptionv4();
        let c1 = &m.layers()[0];
        assert_eq!(c1.out_h(), 149);
        let fc = m.layers().last().unwrap();
        assert_eq!(fc.a_dim(), 1536);
    }

    #[test]
    fn params_near_reference() {
        // Reference Inception-v4 ≈ 42.7M parameters.
        let p = inceptionv4().total_params() as f64;
        assert!((p - 42.7e6).abs() / 42.7e6 < 0.03, "params = {p}");
    }

    #[test]
    fn g_factors_are_small() {
        // Table II: Inception-v4 has only 4.7M G elements — all cout ≤ 1000.
        let m = inceptionv4();
        assert!(m.g_dims().iter().all(|&d| d <= 1000));
    }
}
