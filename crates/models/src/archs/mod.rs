//! Architecture builders for the four paper CNNs (Table II) plus VGG-16 as
//! an extension stress case.

mod densenet;
mod inception;
mod resnet;
mod vgg;

pub use densenet::densenet201;
pub use inception::inceptionv4;
pub use resnet::{resnet152, resnet50};
pub use vgg::vgg16;

use crate::profile::ModelProfile;

/// All four evaluation models with their Table II batch sizes, in the
/// paper's row order.
pub fn paper_models() -> Vec<ModelProfile> {
    vec![resnet50(), resnet152(), densenet201(), inceptionv4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II, validated end-to-end. Layer counts are exact; parameter and
    /// factor-element totals must fall within a few percent of the paper
    /// (batch-norm parameters and rounding account for the slack).
    #[test]
    fn table2_layer_counts_exact() {
        let expect = [54usize, 156, 201, 150];
        for (m, e) in paper_models().iter().zip(expect) {
            assert_eq!(m.num_kfac_layers(), e, "{}", m.name());
        }
    }

    #[test]
    fn table2_batch_sizes() {
        let expect = [32usize, 8, 16, 16];
        for (m, e) in paper_models().iter().zip(expect) {
            assert_eq!(m.batch_size(), e, "{}", m.name());
        }
    }

    #[test]
    fn table2_param_counts_within_tolerance() {
        // Paper: 25.6 / 60.2 / 20.0 / 42.7 million.
        let expect = [25.6e6, 60.2e6, 20.0e6, 42.7e6];
        for (m, e) in paper_models().iter().zip(expect) {
            let got = m.total_params() as f64;
            let rel = (got - e).abs() / e;
            assert!(
                rel < 0.03,
                "{}: params {got:.3e} vs Table II {e:.3e} ({:.1}% off)",
                m.name(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn table2_factor_elements_within_tolerance() {
        // Paper: As = 62.3 / 162.0 / 131.0 / 116.4 M, Gs = 14.6 / 32.9 / 18.0 / 4.7 M.
        //
        // DenseNet-201's G total is expected as 1.8M, not the paper's 18.0M:
        // every DenseNet-201 conv has ≤ 1000 output channels, so
        // Σ d(d+1)/2 cannot reach 18M — and our computed value (1.81M) agrees
        // with every *other* Table II cell to three significant figures.
        // We read 18.0 as a decimal-point erratum for 1.8 (see EXPERIMENTS.md).
        let expect_a = [62.3e6, 162.0e6, 131.0e6, 116.4e6];
        let expect_g = [14.6e6, 32.9e6, 1.8e6, 4.7e6];
        for ((m, ea), eg) in paper_models().iter().zip(expect_a).zip(expect_g) {
            let ga = m.total_packed_a() as f64;
            let gg = m.total_packed_g() as f64;
            assert!(
                (ga - ea).abs() / ea < 0.06,
                "{}: As {ga:.3e} vs {ea:.3e} ({:.1}% off)",
                m.name(),
                (ga - ea).abs() / ea * 100.0
            );
            assert!(
                (gg - eg).abs() / eg < 0.06,
                "{}: Gs {gg:.3e} vs {eg:.3e} ({:.1}% off)",
                m.name(),
                (gg - eg).abs() / eg * 100.0
            );
        }
    }

    #[test]
    fn fig3_resnet50_factor_extremes() {
        let m = resnet50();
        assert_eq!(m.min_packed_factor(), 2_080);
        assert_eq!(m.max_packed_factor(), 10_619_136);
    }

    #[test]
    fn all_models_have_positive_flops() {
        for m in paper_models() {
            assert!(m.fwd_flops() > 0.0, "{}", m.name());
            assert!(m.factor_flops() > 0.0, "{}", m.name());
        }
    }

    #[test]
    fn factor_dims_are_all_positive_and_bounded() {
        for m in paper_models() {
            for d in m.all_factor_dims() {
                assert!((1..=8192).contains(&d), "{}: factor dim {d}", m.name());
            }
        }
    }
}
