//! # spdkfac-models
//!
//! Layer-dimension profiles of the four CNNs the paper evaluates
//! (Table II): ResNet-50, ResNet-152, DenseNet-201 and Inception-v4.
//!
//! The paper's systems results depend on the networks only through their
//! **per-layer Kronecker-factor dimensions** (which set all communication
//! volumes and inversion costs), **parameter counts** (gradient traffic) and
//! **FLOPs** (compute-time model). This crate reconstructs those from
//! genuine architecture definitions — bottleneck blocks, dense blocks,
//! inception blocks — rather than hard-coded tables, and the test-suite
//! validates the results against Table II and the Fig. 3 anchors
//! (ResNet-50's smallest factor = 2 080 packed elements, largest =
//! 10 619 136).
//!
//! # Example
//!
//! ```
//! use spdkfac_models::resnet50;
//!
//! let m = resnet50();
//! assert_eq!(m.num_kfac_layers(), 54);      // Table II "# Layers"
//! let mega = m.total_packed_a() as f64 / 1e6;
//! assert!((mega - 62.3).abs() < 3.0);       // Table II "# As (million)"
//! ```

pub mod archs;
pub mod profile;
pub mod spec;

pub use archs::{densenet201, inceptionv4, paper_models, resnet152, resnet50, vgg16};
pub use profile::ModelProfile;
pub use spec::{LayerKind, LayerSpec};
