//! Whole-model profiles: aggregate statistics over layer specs.

use crate::spec::LayerSpec;

/// A model profile: the ordered list of preconditionable layers plus the
/// experiment batch size (Table II's per-GPU batch).
///
/// Layer order is forward-traversal order; parallel branches of inception /
/// residual blocks are flattened in definition order, which is also the
/// order a define-by-run framework fires its forward hooks in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelProfile {
    name: String,
    layers: Vec<LayerSpec>,
    batch_size: usize,
}

impl ModelProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or `batch_size == 0`.
    pub fn new(name: impl Into<String>, layers: Vec<LayerSpec>, batch_size: usize) -> Self {
        assert!(!layers.is_empty(), "ModelProfile requires layers");
        assert!(
            batch_size > 0,
            "ModelProfile requires a positive batch size"
        );
        ModelProfile {
            name: name.into(),
            layers,
            batch_size,
        }
    }

    /// Model name (e.g. `"ResNet-50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The preconditionable layers in forward order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Per-GPU mini-batch size used in the paper's experiments (Table II).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Returns a copy of the profile at a different per-GPU batch size
    /// (factor dimensions are batch-independent; only FLOPs change).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(&self, batch_size: usize) -> ModelProfile {
        assert!(batch_size > 0, "batch size must be positive");
        ModelProfile {
            name: self.name.clone(),
            layers: self.layers.clone(),
            batch_size,
        }
    }

    /// Number of preconditionable layers — Table II "# Layers".
    pub fn num_kfac_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters — Table II "# Param.".
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.params()).sum()
    }

    /// Total packed elements of all `A` factors — Table II "# As".
    pub fn total_packed_a(&self) -> usize {
        self.layers.iter().map(|l| l.packed_a()).sum()
    }

    /// Total packed elements of all `G` factors — Table II "# Gs".
    pub fn total_packed_g(&self) -> usize {
        self.layers.iter().map(|l| l.packed_g()).sum()
    }

    /// `A`-factor dimensions in forward order.
    pub fn a_dims(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.a_dim()).collect()
    }

    /// `G`-factor dimensions in forward order.
    pub fn g_dims(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.g_dim()).collect()
    }

    /// All `2L` factor dimensions in the paper's inversion-workload order:
    /// `A_0, G_1, A_1, G_2, …` (layer-major, A before G).
    pub fn all_factor_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(2 * self.layers.len());
        for l in &self.layers {
            dims.push(l.a_dim());
            dims.push(l.g_dim());
        }
        dims
    }

    /// Forward FLOPs of one iteration at the profile batch size.
    pub fn fwd_flops(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.fwd_flops(self.batch_size))
            .sum()
    }

    /// Backward FLOPs of one iteration.
    pub fn bwd_flops(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.bwd_flops(self.batch_size))
            .sum()
    }

    /// FLOPs to compute all Kronecker factors for one iteration.
    pub fn factor_flops(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.factor_a_flops(self.batch_size) + l.factor_g_flops(self.batch_size))
            .sum()
    }

    /// Gradient element count (equals parameter count).
    pub fn grad_elements(&self) -> usize {
        self.total_params()
    }

    /// Largest single packed factor (elements) — the Fig. 3 max marker.
    pub fn max_packed_factor(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.packed_a().max(l.packed_g()))
            .max()
            .unwrap_or(0)
    }

    /// Smallest single packed factor (elements) — the Fig. 3 min marker.
    pub fn min_packed_factor(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.packed_a().min(l.packed_g()))
            .min()
            .unwrap_or(0)
    }

    /// Histogram of packed factor sizes (size → multiplicity), the data
    /// behind Fig. 3's scatter.
    pub fn factor_size_histogram(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for l in &self.layers {
            *hist.entry(l.packed_a()).or_insert(0) += 1;
            *hist.entry(l.packed_g()).or_insert(0) += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerSpec;

    fn tiny() -> ModelProfile {
        ModelProfile::new(
            "tiny",
            vec![
                LayerSpec::conv("c1", 3, 8, 3, 1, 1, 8),
                LayerSpec::linear("fc", 8 * 64, 10),
            ],
            4,
        )
    }

    #[test]
    fn aggregates_sum_over_layers() {
        let m = tiny();
        assert_eq!(m.num_kfac_layers(), 2);
        assert_eq!(m.total_params(), 3 * 8 * 9 + 512 * 10 + 10);
        assert_eq!(m.total_packed_a(), 27 * 28 / 2 + 512 * 513 / 2);
        assert_eq!(m.total_packed_g(), 8 * 9 / 2 + 10 * 11 / 2);
    }

    #[test]
    fn factor_dim_order_is_layer_major() {
        let m = tiny();
        assert_eq!(m.all_factor_dims(), vec![27, 8, 512, 10]);
    }

    #[test]
    fn histogram_counts_multiplicities() {
        let m = ModelProfile::new(
            "dup",
            vec![
                LayerSpec::conv("c1", 8, 8, 1, 1, 0, 4),
                LayerSpec::conv("c2", 8, 8, 1, 1, 0, 4),
            ],
            1,
        );
        let hist = m.factor_size_histogram();
        assert_eq!(hist[&36], 4); // both A (dim 8) and G (dim 8) twice
    }

    #[test]
    fn min_max_factors() {
        let m = tiny();
        assert_eq!(m.max_packed_factor(), 512 * 513 / 2);
        assert_eq!(m.min_packed_factor(), 8 * 9 / 2);
    }

    #[test]
    #[should_panic(expected = "requires layers")]
    fn rejects_empty() {
        let _ = ModelProfile::new("empty", vec![], 1);
    }
}
