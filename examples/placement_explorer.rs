//! Placement explorer: what Algorithm 1 (LBP) decides for a real model.
//!
//! Run with (model name optional: resnet50 | resnet152 | densenet201 |
//! inceptionv4; default resnet50):
//!
//! ```text
//! cargo run --release --example placement_explorer -- densenet201
//! ```
//!
//! Shows the CT/NCT classification (Fig. 11's threshold in action), the
//! per-GPU load balance, and the modelled inverse-phase times of the three
//! placement strategies (Fig. 12).

use spdkfac::core::placement::{place, PlacementStrategy, TensorAssignment};
use spdkfac::models::{densenet201, inceptionv4, resnet152, resnet50, ModelProfile};
use spdkfac::sim::{simulate_inverse_phase, SimConfig};

fn pick_model(name: &str) -> ModelProfile {
    match name {
        "resnet50" => resnet50(),
        "resnet152" => resnet152(),
        "densenet201" => densenet201(),
        "inceptionv4" => inceptionv4(),
        other => panic!("unknown model {other}; use resnet50|resnet152|densenet201|inceptionv4"),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let m = pick_model(&name);
    let world = 64;
    let cfg = SimConfig::paper_testbed(world);
    let dims = m.all_factor_dims();
    let plc = place(
        &dims,
        world,
        &cfg.hw.inverse,
        &cfg.hw.bcast,
        PlacementStrategy::default(),
    );

    let ncts: Vec<usize> = (0..dims.len()).filter(|&i| plc.is_nct(i)).collect();
    println!(
        "{}: {} factor tensors on {world} GPUs — {} NCT (replicated), {} CT (distributed + broadcast)",
        m.name(),
        dims.len(),
        ncts.len(),
        dims.len() - ncts.len()
    );
    let max_nct = ncts.iter().map(|&i| dims[i]).max().unwrap_or(0);
    println!("largest NCT dimension: {max_nct} (the Fig. 11 crossover in action)");

    // Per-GPU CT load.
    let mut loads = vec![(0usize, 0.0f64); world];
    for (i, a) in plc.assignments().iter().enumerate() {
        if let TensorAssignment::Gpu(p) = a {
            loads[*p].0 += 1;
            loads[*p].1 += cfg.hw.inverse_time(dims[i]);
        }
    }
    let busiest = loads
        .iter()
        .cloned()
        .fold((0, 0.0f64), |acc, l| if l.1 > acc.1 { l } else { acc });
    let idle = loads.iter().filter(|l| l.0 == 0).count();
    println!(
        "busiest GPU: {} CTs, {:.2} ms of inversions; {} GPUs carry no CT",
        busiest.0,
        busiest.1 * 1e3,
        idle
    );

    println!("\ninverse-phase wall-clock (simulated):");
    for (label, strategy) in [
        ("Non-Dist", PlacementStrategy::NonDist),
        ("Seq-Dist", PlacementStrategy::SeqDist),
        ("LBP", PlacementStrategy::default()),
    ] {
        let r = simulate_inverse_phase(&dims, &cfg, &strategy);
        println!("  {label:<9} {:.4}s", r.total);
    }
}
