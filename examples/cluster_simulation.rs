//! Cluster simulation: explore how the algorithms scale with GPU count.
//!
//! Run with (GPU count optional, default 64):
//!
//! ```text
//! cargo run --release --example cluster_simulation -- 16
//! ```
//!
//! Prints Table III-style iteration times at the requested scale plus the
//! SPD-KFAC breakdown, using the calibrated RTX 2080 Ti / 100 Gb IB profile.

use spdkfac::models::paper_models;
use spdkfac::sim::{simulate_iteration, Algo, SimConfig};

fn main() {
    let world: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("GPU count must be an integer"))
        .unwrap_or(64);
    println!("simulated cluster: {world} GPUs (RTX 2080 Ti, 100 Gb/s IB profile)\n");
    let cfg = SimConfig::paper_testbed(world);
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6}",
        "Model", "S-SGD", "D-KFAC", "MPD", "SPD", "SP1", "SP2"
    );
    for m in paper_models() {
        let ssgd = simulate_iteration(&m, &cfg, Algo::SSgd).total;
        let d = simulate_iteration(&m, &cfg, Algo::DKfac).total;
        let mpd = simulate_iteration(&m, &cfg, Algo::MpdKfac).total;
        let spd = simulate_iteration(&m, &cfg, Algo::SpdKfac).total;
        println!(
            "{:<14} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>6.2} {:>6.2}",
            m.name(),
            ssgd,
            d,
            mpd,
            spd,
            d / spd,
            mpd / spd
        );
    }
    println!("\nSPD-KFAC breakdowns:");
    for m in paper_models() {
        let r = simulate_iteration(&m, &cfg, Algo::SpdKfac);
        let b = r.breakdown;
        println!(
            "{:<14} total={:.4}s  ff_bp={:.3} grad={:.3} fcomp={:.3} fcomm={:.3} icomp={:.3} icomm={:.3}",
            m.name(),
            r.total,
            b.ff_bp,
            b.grad_comm,
            b.factor_comp,
            b.factor_comm,
            b.inverse_comp,
            b.inverse_comm
        );
    }
}
