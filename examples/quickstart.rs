//! Quickstart: K-FAC vs SGD on an ill-conditioned classification problem.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example reproduces the paper's §I motivation in miniature: on inputs
//! with badly-scaled features, second-order preconditioning reaches the loss
//! target in far fewer iterations than first-order SGD.

use spdkfac::core::optimizer::{KfacConfig, KfacOptimizer};
use spdkfac::nn::data::ill_conditioned_blobs;
use spdkfac::nn::loss::{accuracy, softmax_cross_entropy};
use spdkfac::nn::models::mlp;
use spdkfac::nn::optim::Sgd;

fn main() {
    let data = ill_conditioned_blobs(3, 8, 40, 0.3, 100.0, 11);
    let (x, y) = data.batch(0, data.len());
    let iters = 60;

    // --- K-FAC ------------------------------------------------------------
    let mut net = mlp(&[8, 32, 3], 5);
    let mut kfac = KfacOptimizer::new(
        &net,
        KfacConfig {
            lr: 0.1,
            momentum: 0.0,
            damping: 0.03,
            ..KfacConfig::default()
        },
    );
    println!("{:>6} {:>12} {:>12}", "iter", "kfac loss", "sgd loss");
    let mut kfac_losses = Vec::new();
    for _ in 0..iters {
        let out = net.forward(&x, true);
        let (loss, grad) = softmax_cross_entropy(&out, &y);
        net.backward(&grad);
        kfac.step(&mut net).expect("kfac step");
        kfac_losses.push(loss);
    }
    let kfac_acc = accuracy(&net.forward(&x, false), &y);

    // --- SGD (best of a small lr sweep) ------------------------------------
    let mut best: Option<(f64, Vec<f64>, f64)> = None;
    for lr in [0.3, 0.1, 0.03, 0.01, 0.003] {
        let mut net = mlp(&[8, 32, 3], 5);
        let mut sgd = Sgd::new(lr, 0.0, 0.0);
        let mut losses = Vec::new();
        for _ in 0..iters {
            let out = net.forward(&x, false);
            let (loss, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            sgd.step(&mut net.parameters_mut());
            losses.push(loss);
        }
        let final_loss = *losses.last().expect("nonempty");
        let acc = accuracy(&net.forward(&x, false), &y);
        if final_loss.is_finite() && best.as_ref().is_none_or(|(b, _, _)| final_loss < *b) {
            best = Some((final_loss, losses, acc));
        }
    }
    let (sgd_final, sgd_losses, sgd_acc) = best.expect("at least one lr is finite");

    for i in (0..iters).step_by(10) {
        println!("{:>6} {:>12.5} {:>12.5}", i, kfac_losses[i], sgd_losses[i]);
    }
    println!(
        "\nfinal: kfac loss {:.5} (acc {:.2}), best sgd loss {:.5} (acc {:.2})",
        kfac_losses.last().expect("nonempty"),
        kfac_acc,
        sgd_final,
        sgd_acc
    );
    println!("K-FAC reaches a much lower loss in the same number of iterations —");
    println!("the reason the paper wants D-KFAC's per-iteration cost down.");
}
