//! Compares three optimizers on the same ill-conditioned problem:
//! SGD (best of an lr sweep), K-FAC, and EKFAC (the eigenvalue-corrected
//! variant, extension).
//!
//! ```text
//! cargo run --release --example second_order_comparison
//! ```

use spdkfac::core::ekfac::{EkfacConfig, EkfacOptimizer};
use spdkfac::core::optimizer::{KfacConfig, KfacOptimizer};
use spdkfac::nn::data::ill_conditioned_blobs;
use spdkfac::nn::loss::softmax_cross_entropy;
use spdkfac::nn::models::mlp;
use spdkfac::nn::optim::Sgd;

fn main() {
    let data = ill_conditioned_blobs(3, 8, 40, 0.3, 100.0, 11);
    let (x, y) = data.batch(0, data.len());
    let iters = 60;

    // K-FAC.
    let mut kfac_net = mlp(&[8, 32, 3], 5);
    let mut kfac = KfacOptimizer::new(
        &kfac_net,
        KfacConfig {
            lr: 0.1,
            momentum: 0.0,
            damping: 0.03,
            ..KfacConfig::default()
        },
    );
    // EKFAC.
    let mut ek_net = mlp(&[8, 32, 3], 5);
    let mut ekfac = EkfacOptimizer::new(
        &ek_net,
        EkfacConfig {
            lr: 0.1,
            momentum: 0.0,
            damping: 0.03,
            ..EkfacConfig::default()
        },
    );
    // SGD sweep state.
    let mut sgd_nets: Vec<_> = [0.3, 0.1, 0.03, 0.01, 0.003]
        .iter()
        .map(|&lr| (mlp(&[8, 32, 3], 5), Sgd::new(lr, 0.0, 0.0)))
        .collect();

    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "iter", "kfac", "ekfac", "best sgd"
    );
    for i in 0..iters {
        let out = kfac_net.forward(&x, true);
        let (kfac_loss, grad) = softmax_cross_entropy(&out, &y);
        kfac_net.backward(&grad);
        kfac.step(&mut kfac_net).expect("kfac");

        let out = ek_net.forward(&x, true);
        let (ek_loss, grad) = softmax_cross_entropy(&out, &y);
        ek_net.backward(&grad);
        ekfac.step(&mut ek_net).expect("ekfac");

        let mut best_sgd = f64::INFINITY;
        for (net, sgd) in &mut sgd_nets {
            let out = net.forward(&x, false);
            let (loss, grad) = softmax_cross_entropy(&out, &y);
            net.backward(&grad);
            sgd.step(&mut net.parameters_mut());
            if loss.is_finite() {
                best_sgd = best_sgd.min(loss);
            }
        }
        if i % 10 == 0 || i == iters - 1 {
            println!("{i:>6} {kfac_loss:>12.5} {ek_loss:>12.5} {best_sgd:>12.5}");
        }
    }
    println!("\nboth second-order methods converge far faster per iteration than");
    println!("SGD; EKFAC tracks K-FAC while replacing inversions with");
    println!("eigendecompositions (see `spdkfac::core::ekfac`).");
}
