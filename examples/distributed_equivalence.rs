//! Distributed equivalence: D-KFAC, MPD-KFAC and SPD-KFAC produce the same
//! parameters while moving different traffic.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example distributed_equivalence
//! ```
//!
//! Four worker threads train the same model with real ring collectives under
//! each algorithm. The parameter trajectories agree to floating-point noise
//! (the paper's premise for comparing them on wall-clock only), while the
//! traffic counters show *how* the algorithms differ.

use spdkfac::core::distributed::{Algorithm, DistributedConfig, TrainSession};
use spdkfac::nn::data::gaussian_blobs;
use spdkfac::nn::models::deep_mlp;

fn main() {
    let world = 4;
    let iters = 10;
    let data = gaussian_blobs(3, 8, 16 * world, 0.3, 21);
    let build = || deep_mlp(8, 16, 4, 3, 7);

    let mut results = Vec::new();
    for algo in [Algorithm::DKfac, Algorithm::MpdKfac, Algorithm::SpdKfac] {
        let mut cfg = DistributedConfig::new(world, algo);
        cfg.kfac.damping = 0.1;
        cfg.kfac.lr = 0.05;
        cfg.kfac.momentum = 0.0;
        let r = TrainSession::builder(cfg)
            .run(&build, &data, iters, 4)
            .expect("local run");
        println!(
            "{algo:?}: final loss {:.6}, ring traffic {:.2} M elements, {} collective ops",
            r.losses.last().expect("nonempty"),
            r.traffic_elements as f64 / 1e6,
            r.collective_ops
        );
        results.push(r);
    }

    let diff = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    };
    let d_vs_mpd = diff(&results[0].final_params, &results[1].final_params);
    let d_vs_spd = diff(&results[0].final_params, &results[2].final_params);
    println!("\nmax |param| difference:  D vs MPD = {d_vs_mpd:.2e},  D vs SPD = {d_vs_spd:.2e}");
    assert!(d_vs_mpd < 1e-8 && d_vs_spd < 1e-8);
    println!("identical numerics — the speedup is purely systems-level, as §VI claims.");
}
