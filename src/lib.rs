//! # spdkfac — meta-crate
//!
//! A from-scratch Rust reproduction of *"Accelerating Distributed K-FAC with
//! Smart Parallelism of Computing and Communication Tasks"* (ICDCS 2021).
//!
//! This crate re-exports every member crate of the workspace so that examples
//! and downstream users can depend on a single crate:
//!
//! - [`tensor`] — dense and packed-symmetric linear algebra (GEMM, Cholesky,
//!   SPD inverse, Kronecker identities).
//! - [`nn`] — a minimal neural-network substrate with K-FAC statistic capture.
//! - [`collectives`] — in-process ring all-reduce / broadcast / reduce-scatter
//!   with Horovod-style asynchronous handles.
//! - [`models`] — layer-dimension profiles of the four paper CNNs
//!   (ResNet-50/152, DenseNet-201, Inception-v4).
//! - [`sim`] — a discrete-event simulator of a GPU cluster with the paper's
//!   performance models (Eq. 14, 26, 27).
//! - [`core`] — the paper's contribution: K-FAC preconditioning, the dynamic
//!   tensor-fusion pipeline (Eq. 15) and the load-balancing placement
//!   (Algorithm 1), plus D-KFAC / MPD-KFAC / SPD-KFAC distributed trainers.
//! - [`obs`] — the unified instrumentation layer: phase-tagged span
//!   recording, metrics, and the shared Chrome-trace/summary/CSV exporters
//!   used by the trainers, the collectives, and the simulator alike.
//!
//! # Quickstart
//!
//! ```
//! use spdkfac::core::optimizer::{KfacConfig, KfacOptimizer};
//! use spdkfac::nn::models::mlp;
//!
//! let mut net = mlp(&[8, 16, 4], 7);
//! let opt = KfacOptimizer::new(&net, KfacConfig::default());
//! assert!(opt.num_preconditioned_layers() > 0);
//! # let _ = net.parameters().len();
//! ```

pub use spdkfac_collectives as collectives;
pub use spdkfac_core as core;
pub use spdkfac_models as models;
pub use spdkfac_nn as nn;
pub use spdkfac_obs as obs;
pub use spdkfac_sim as sim;
pub use spdkfac_tensor as tensor;
